(* Benchmark harness regenerating the paper's performance story
   (DESIGN.md experiments P1-P8).  One Bechamel test per measured
   configuration; each experiment prints its table plus the derived
   ratios ("who wins, by what factor") that EXPERIMENTS.md records.

     dune exec bench/main.exe            run everything
     dune exec bench/main.exe -- P1 P3   run selected experiments
     dune exec bench/main.exe -- --smoke P6   tiny scales + short quota (CI)

   All synthetic data is generated from a fixed seed (override with
   BENCH_SEED=<int>) so runs are reproducible; the seed is recorded in
   the emitted BENCH_*.json and printed on any sanity failure. *)

(* the raw ns clock from bechamel's stubs — aliased before [open
   Toolkit], which shadows [Monotonic_clock] with its MEASURE wrapper *)
module Mclock = Monotonic_clock

open Bechamel
open Toolkit

module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic
module Generate = Aqua_translator.Generate
module Metadata = Aqua_dsp.Metadata
module Server = Aqua_dsp.Server
module Engine = Aqua_sqlengine.Engine
module Artifact = Aqua_dsp.Artifact
module Datagen = Aqua_workload.Datagen
module Telemetry = Aqua_core.Telemetry
module Obs_stats = Aqua_obs.Stats
module Recorder = Aqua_obs.Recorder
module Histogram = Aqua_obs.Histogram

(* ------------------------------------------------------------------ *)
(* Reproducibility and smoke mode                                     *)

let seed =
  match Option.bind (Sys.getenv_opt "BENCH_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 42

let smoke = ref false

(* Smoke mode (CI): shrink the data scales ~10x and the measurement
   quota so the whole run takes seconds, with the same output schema. *)
let sc n = if !smoke then max 2 (n / 10) else n

let sizes c o l p =
  { Datagen.customers = sc c; orders = sc o; lines_per_order = l;
    payments = sc p }

(* Telemetry spans should use the same monotonic source the benchmark
   measurements do, not the wall clock. *)
let () = Telemetry.set_clock Mclock.now

(* A default-sized (256k-word) nursery forces a minor collection every
   couple of query executions, and whatever is live at that moment —
   for the batch engine, entire in-flight batches — gets promoted and
   later swept by the major collector.  That turns the measurements
   into a lottery over GC phase.  An 8M-word nursery lets intermediate
   rows die young across every engine configuration, so the sweeps
   compare evaluator cost, not promotion luck. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 }

(* ------------------------------------------------------------------ *)
(* Harness                                                            *)

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]

let instance = Instance.monotonic_clock

let run_benchmarks tests =
  let cfg =
    if !smoke then Benchmark.cfg ~limit:100 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  Analyze.all ols instance raw

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols_result -> (
    match Analyze.OLS.estimates ols_result with
    | Some (e :: _) -> e
    | _ -> nan)

(* Interleaved A/B medians, for overhead comparisons.  Two bechamel
   estimates taken tens of seconds apart drift by far more than a
   few-percent effect (GC state, frequency scaling carried over from
   earlier tests), so small overheads are measured by alternating the
   two configurations and comparing medians of the same window. *)
let ab_median_ratio ?(warmup = 10) ~iters (f : bool -> unit) =
  let time b =
    let t0 = Mclock.now () in
    f b;
    Int64.to_float (Int64.sub (Mclock.now ()) t0)
  in
  for _ = 1 to warmup do
    ignore (time false);
    ignore (time true)
  done;
  let off = ref [] and on_ = ref [] in
  for _ = 1 to iters do
    off := time false :: !off;
    on_ := time true :: !on_
  done;
  let median l = List.nth (List.sort compare l) (iters / 2) in
  median !on_ /. median !off

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let print_table title rows =
  Printf.printf "\n### %s\n\n" title;
  let w =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 12 rows
  in
  Printf.printf "%-*s | time/op\n%s-+---------\n" w "case" (String.make w '-');
  List.iter
    (fun (name, ns) -> Printf.printf "%-*s | %s\n" w name (pretty_ns ns))
    rows;
  flush stdout

let ratio a b =
  if Float.is_nan a || Float.is_nan b || b = 0.0 then nan else a /. b

(* ------------------------------------------------------------------ *)
(* P1: result transport — text-encoded vs XML materialization          *)

let p1 () =
  print_endline "\n== P1: result handling, text transport vs XML (section 4) ==";
  let configs =
    List.map
      (fun (rows, cols) -> (sc rows, cols))
      [ (100, 4); (100, 16); (1000, 4); (1000, 16); (4000, 8) ]
  in
  let cases =
    List.map
      (fun (rows, cols) ->
        let name = Printf.sprintf "W%d" cols in
        let table = Datagen.wide_table ~seed ~name ~columns:cols ~rows () in
        let app = Artifact.application (Printf.sprintf "P1_%d_%d" rows cols) in
        ignore (Artifact.import_physical_table app ~project:"P" table);
        let env = Semantic.env_of_application app in
        let srv = Server.create app in
        let t =
          Translator.translate env (Printf.sprintf "SELECT * FROM %s" name)
        in
        let wrapped = Translator.for_text_transport t in
        let xml_path () =
          (* server executes + serializes; client parses + types rows *)
          let text = Server.execute_to_xml srv t.Translator.xquery in
          Result_set.to_rowset
            (Result_set.of_xml_text t.Translator.columns text)
        in
        let text_path () =
          let text = Server.execute_to_text srv wrapped in
          Result_set.to_rowset
            (Result_set.of_encoded_text t.Translator.columns text)
        in
        (rows, cols, xml_path, text_path))
      configs
  in
  let tests =
    List.concat_map
      (fun (rows, cols, xml_path, text_path) ->
        [ Test.make
            ~name:(Printf.sprintf "xml rows=%d cols=%d" rows cols)
            (Staged.stage (fun () -> ignore (xml_path ())));
          Test.make
            ~name:(Printf.sprintf "text rows=%d cols=%d" rows cols)
            (Staged.stage (fun () -> ignore (text_path ()))) ])
      cases
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p1" tests) in
  let times =
    List.concat_map
      (fun (rows, cols, _, _) ->
        [ ( Printf.sprintf "xml  transport rows=%-4d cols=%-2d" rows cols,
            estimate results (Printf.sprintf "p1/xml rows=%d cols=%d" rows cols) );
          ( Printf.sprintf "text transport rows=%-4d cols=%-2d" rows cols,
            estimate results (Printf.sprintf "p1/text rows=%d cols=%d" rows cols) ) ])
      cases
  in
  print_table "P1a full-pipeline transport cost (includes XQuery evaluation)"
    times;
  Printf.printf
    "\nspeedup of text transport over XML materialization (full pipeline):\n";
  List.iter
    (fun (rows, cols, _, _) ->
      let x = estimate results (Printf.sprintf "p1/xml rows=%d cols=%d" rows cols) in
      let t = estimate results (Printf.sprintf "p1/text rows=%d cols=%d" rows cols) in
      Printf.printf "  rows=%-4d cols=%-2d : %.2fx\n" rows cols (ratio x t))
    cases;
  flush stdout

(* P1b isolates what the paper's claim is about: the JDBC driver's
   client-side result handling.  Both wire payloads are produced once;
   we measure decoding them into typed result sets, and report the
   wire sizes. *)
let p1b () =
  print_endline
    "\n== P1b: client-side result handling (decode wire to rows) ==";
  let configs =
    List.map
      (fun (rows, cols) -> (sc rows, cols))
      [ (100, 4); (1000, 4); (1000, 16); (4000, 8) ]
  in
  let cases =
    List.map
      (fun (rows, cols) ->
        let name = Printf.sprintf "W%d" cols in
        let table = Datagen.wide_table ~seed ~name ~columns:cols ~rows () in
        let app = Artifact.application (Printf.sprintf "P1b_%d_%d" rows cols) in
        ignore (Artifact.import_physical_table app ~project:"P" table);
        let env = Semantic.env_of_application app in
        let srv = Server.create app in
        let t =
          Translator.translate env (Printf.sprintf "SELECT * FROM %s" name)
        in
        let xml_wire = Server.execute_to_xml srv t.Translator.xquery in
        let text_wire =
          Server.execute_to_text srv (Translator.for_text_transport t)
        in
        (rows, cols, t.Translator.columns, xml_wire, text_wire))
      configs
  in
  let tests =
    List.concat_map
      (fun (rows, cols, columns, xml_wire, text_wire) ->
        [ Test.make
            ~name:(Printf.sprintf "xml-decode rows=%d cols=%d" rows cols)
            (Staged.stage (fun () ->
                 ignore
                   (Result_set.to_rowset (Result_set.of_xml_text columns xml_wire))));
          Test.make
            ~name:(Printf.sprintf "text-decode rows=%d cols=%d" rows cols)
            (Staged.stage (fun () ->
                 ignore
                   (Result_set.to_rowset
                      (Result_set.of_encoded_text columns text_wire)))) ])
      cases
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p1b" tests) in
  print_table "P1b client-side decode cost"
    (List.concat_map
       (fun (rows, cols, _, _, _) ->
         [ ( Printf.sprintf "xml  decode rows=%-4d cols=%-2d" rows cols,
             estimate results
               (Printf.sprintf "p1b/xml-decode rows=%d cols=%d" rows cols) );
           ( Printf.sprintf "text decode rows=%-4d cols=%-2d" rows cols,
             estimate results
               (Printf.sprintf "p1b/text-decode rows=%d cols=%d" rows cols) ) ])
       cases);
  Printf.printf "\nwire sizes and client-side speedup (xml/text):\n";
  List.iter
    (fun (rows, cols, _, xml_wire, text_wire) ->
      let x =
        estimate results (Printf.sprintf "p1b/xml-decode rows=%d cols=%d" rows cols)
      in
      let t =
        estimate results (Printf.sprintf "p1b/text-decode rows=%d cols=%d" rows cols)
      in
      Printf.printf
        "  rows=%-4d cols=%-2d : xml %7d bytes, text %7d bytes (%.2fx smaller), decode %.2fx faster\n"
        rows cols (String.length xml_wire) (String.length text_wire)
        (ratio (float_of_int (String.length xml_wire))
           (float_of_int (String.length text_wire)))
        (ratio x t))
    cases;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P2: translation throughput by SQL feature class                     *)

let p2_classes =
  [ ( "simple-select",
      "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID > 3" );
    ("star", "SELECT * FROM CUSTOMERS");
    ( "derived-table",
      "SELECT I.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS I WHERE I.ID \
       > 2" );
    ( "inner-join",
      "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C INNER JOIN PAYMENTS \
       P ON C.CUSTOMERID = P.CUSTID" );
    ( "left-outer-join",
      "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C LEFT OUTER JOIN \
       PAYMENTS P ON C.CUSTOMERID = P.CUSTID" );
    ( "group-by",
      "SELECT CITY, COUNT(*) N, SUM(TIER) S FROM CUSTOMERS GROUP BY CITY \
       HAVING COUNT(*) > 1" );
    ( "set-op",
      "SELECT CITY FROM CUSTOMERS WHERE TIER = 1 UNION SELECT CITY FROM \
       CUSTOMERS WHERE TIER = 2" );
    ( "subquery-predicates",
      "SELECT CUSTOMERNAME FROM CUSTOMERS C WHERE CUSTOMERID IN (SELECT \
       CUSTOMERID FROM PO_CUSTOMERS) AND EXISTS (SELECT 1 FROM PAYMENTS P \
       WHERE P.CUSTID = C.CUSTOMERID)" );
    ( "complex-report",
      "SELECT C.CITY, COUNT(*) N, SUM(P.AMOUNT) T FROM CUSTOMERS C INNER \
       JOIN PO_CUSTOMERS P ON C.CUSTOMERID = P.CUSTOMERID WHERE C.TIER IS \
       NOT NULL GROUP BY C.CITY ORDER BY T DESC" ) ]

let p2 () =
  print_endline
    "\n== P2: translation throughput by query class (section 3.2) ==";
  let app = Aqua_workload.Demo.build () in
  let cache = Metadata.Cache.create app in
  let env = Semantic.env_of_cache cache in
  let tests =
    List.map
      (fun (name, sql) ->
        Test.make ~name
          (Staged.stage (fun () -> ignore (Translator.translate env sql))))
      p2_classes
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p2" tests) in
  print_table "P2 translation latency (warm metadata cache)"
    (List.map
       (fun (name, _) -> (name, estimate results ("p2/" ^ name)))
       p2_classes)

(* ------------------------------------------------------------------ *)
(* P3: metadata cache effect on translation                            *)

let p3 () =
  print_endline "\n== P3: metadata cache (section 3.5) ==";
  let app = Aqua_workload.Demo.build () in
  let sql =
    "SELECT C.CUSTOMERNAME, O.AMOUNT, P.PAYMENT FROM CUSTOMERS C, \
     PO_CUSTOMERS O, PAYMENTS P WHERE C.CUSTOMERID = O.CUSTOMERID AND \
     C.CUSTOMERID = P.CUSTID"
  in
  let warm_cache = Metadata.Cache.create app in
  let warm_env = Semantic.env_of_cache warm_cache in
  ignore (Translator.translate warm_env sql);
  let cold_cache = Metadata.Cache.create app in
  let cold_env = Semantic.env_of_cache cold_cache in
  let tests =
    [ Test.make ~name:"warm-cache"
        (Staged.stage (fun () -> ignore (Translator.translate warm_env sql)));
      Test.make ~name:"cold-cache"
        (Staged.stage (fun () ->
             Metadata.Cache.clear cold_cache;
             ignore (Translator.translate cold_env sql)));
      Test.make ~name:"metadata-fetch-only"
        (Staged.stage (fun () ->
             ignore (Metadata.fetch app "CUSTOMERS");
             ignore (Metadata.fetch app "PO_CUSTOMERS");
             ignore (Metadata.fetch app "PAYMENTS"))) ]
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p3" tests) in
  let warm = estimate results "p3/warm-cache" in
  let cold = estimate results "p3/cold-cache" in
  print_table "P3 translation latency, 3-table query"
    [ ("warm metadata cache", warm);
      ("cold metadata cache", cold);
      ("metadata fetch alone", estimate results "p3/metadata-fetch-only") ];
  Printf.printf "\ncold/warm ratio: %.2fx\n" (ratio cold warm);
  flush stdout

(* ------------------------------------------------------------------ *)
(* P4: end-to-end SQL-via-XQuery vs the direct SQL engine              *)

let p4 () =
  print_endline "\n== P4: end-to-end vs direct SQL engine ==";
  let scales =
    [ ("small", sizes 20 60 2 40); ("medium", sizes 60 240 3 150) ]
  in
  let sql =
    "SELECT C.CITY, COUNT(*) N, SUM(L.QTY * L.PRICE) REV FROM CUSTOMERS C \
     INNER JOIN ORDERS O ON C.CUSTOMERID = O.CUSTOMERID INNER JOIN \
     ORDERLINES L ON O.ORDERID = L.ORDERID GROUP BY C.CITY ORDER BY REV DESC"
  in
  let cases =
    List.map
      (fun (label, s) ->
        let app = Datagen.application ~seed s in
        let conn = Connection.connect app in
        let engine_env = Engine.env_of_application app in
        let stmt = Aqua_sql.Parser.parse sql in
        (label, conn, engine_env, stmt))
      scales
  in
  let tests =
    List.concat_map
      (fun (label, conn, engine_env, stmt) ->
        [ Test.make
            ~name:("dsp-pipeline-" ^ label)
            (Staged.stage (fun () ->
                 ignore
                   (Result_set.to_rowset (Connection.execute_query conn sql))));
          Test.make
            ~name:("direct-engine-" ^ label)
            (Staged.stage (fun () -> ignore (Engine.execute engine_env stmt)))
        ])
      cases
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p4" tests) in
  print_table "P4 reporting query, full pipeline vs baseline"
    (List.concat_map
       (fun (label, _, _, _) ->
         [ ( "dsp pipeline  " ^ label,
             estimate results ("p4/dsp-pipeline-" ^ label) );
           ( "direct engine " ^ label,
             estimate results ("p4/direct-engine-" ^ label) ) ])
       cases);
  List.iter
    (fun (label, _, _, _) ->
      Printf.printf "overhead of the DSP pipeline (%s): %.2fx\n" label
        (ratio
           (estimate results ("p4/dsp-pipeline-" ^ label))
           (estimate results ("p4/direct-engine-" ^ label))))
    cases;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P5: patterned vs naive emission (ablation)                          *)

let p5 () =
  print_endline "\n== P5: patterned vs naive XQuery emission (ablation) ==";
  let app = Datagen.application ~seed (sizes 40 150 2 90) in
  let env = Semantic.env_of_application app in
  let srv = Server.create app in
  let queries =
    [ ( "like-filter",
        "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME LIKE 'Acme%'" );
      ("projection", "SELECT ORDERID, CUSTOMERID, ORDERDATE, STATUS FROM ORDERS");
      ( "group-by",
        "SELECT STATUS, COUNT(*) N, MIN(PRIORITY) MN FROM ORDERS GROUP BY \
         STATUS" ) ]
  in
  let run_style style sql () =
    let t = Translator.translate ~style env sql in
    ignore (Server.execute srv t.Translator.xquery)
  in
  let tests =
    List.concat_map
      (fun (name, sql) ->
        [ Test.make
            ~name:("patterned-" ^ name)
            (Staged.stage (run_style Generate.Patterned sql));
          Test.make
            ~name:("naive-" ^ name)
            (Staged.stage (run_style Generate.Naive sql)) ])
      queries
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p5" tests) in
  print_table "P5 translate+execute by emission style"
    (List.concat_map
       (fun (name, _) ->
         [ ("patterned " ^ name, estimate results ("p5/patterned-" ^ name));
           ("naive     " ^ name, estimate results ("p5/naive-" ^ name)) ])
       queries);
  List.iter
    (fun (name, _) ->
      Printf.printf "naive/patterned (%s): %.2fx\n" name
        (ratio
           (estimate results ("p5/naive-" ^ name))
           (estimate results ("p5/patterned-" ^ name))))
    queries;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P6: join strategy — nested loop vs hash equi-join (optimizer)       *)

let p6_json_path = "BENCH_P6.json"

let p6 () =
  print_endline
    "\n== P6: join strategy, nested loop vs hash equi-join (optimizer) ==";
  let scales =
    [ ("small", sizes 50 200 2 60); ("medium", sizes 150 600 2 180);
      ("large", sizes 300 1200 2 360) ]
  in
  (* a comma-style join: the translator emits for/for/where, which the
     optimizer rewrites into a hash equi-join plus a residual filter *)
  let sql =
    "SELECT C.CUSTOMERNAME, O.ORDERID FROM CUSTOMERS C, ORDERS O WHERE \
     C.CUSTOMERID = O.CUSTOMERID AND O.PRIORITY > 1"
  in
  let cases =
    List.map
      (fun (label, s) ->
        let app = Datagen.application ~seed s in
        let env = Semantic.env_of_application app in
        let t = Translator.translate env sql in
        let naive_srv = Server.create ~optimize:false app in
        let opt_srv = Server.create app in
        let prepared = Server.prepare opt_srv t.Translator.xquery in
        (label, s, t, naive_srv, opt_srv, prepared))
      scales
  in
  (* sanity: the three strategies must agree before we time them *)
  List.iter
    (fun (label, _, t, naive_srv, opt_srv, prepared) ->
      let ser items = Aqua_xml.Serialize.sequence_to_string items in
      let a = ser (Server.execute naive_srv t.Translator.xquery) in
      let b = ser (Server.execute opt_srv t.Translator.xquery) in
      let c = ser (Server.execute_prepared prepared) in
      if a <> b || a <> c then
        failwith
          (Printf.sprintf "P6 %s: join strategies disagree (BENCH_SEED=%d)"
             label seed))
    cases;
  let tests =
    List.concat_map
      (fun (label, _, t, naive_srv, opt_srv, prepared) ->
        [ Test.make
            ~name:("nested-loop-" ^ label)
            (Staged.stage (fun () ->
                 ignore (Server.execute naive_srv t.Translator.xquery)));
          Test.make
            ~name:("hash-join-" ^ label)
            (Staged.stage (fun () ->
                 ignore (Server.execute opt_srv t.Translator.xquery)));
          (* same path with the telemetry probes live, to bound the
             instrumentation overhead *)
          Test.make
            ~name:("hash-join-telemetry-" ^ label)
            (Staged.stage (fun () ->
                 Telemetry.set_enabled true;
                 ignore (Server.execute opt_srv t.Translator.xquery);
                 Telemetry.set_enabled false));
          Test.make
            ~name:("hash-join-compiled-" ^ label)
            (Staged.stage (fun () -> ignore (Server.execute_prepared prepared)))
        ])
      cases
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p6" tests) in
  let rows =
    List.map
      (fun (label, s, _, _, _, _) ->
        let n = estimate results ("p6/nested-loop-" ^ label) in
        let h = estimate results ("p6/hash-join-" ^ label) in
        let ht = estimate results ("p6/hash-join-telemetry-" ^ label) in
        let c = estimate results ("p6/hash-join-compiled-" ^ label) in
        (label, s, n, h, ht, c))
      cases
  in
  print_table "P6 inner join by strategy"
    (List.concat_map
       (fun (label, (s : Datagen.sizes), n, h, ht, c) ->
         let tag =
           Printf.sprintf "%-6s (%dx%d)" label s.Datagen.customers
             s.Datagen.orders
         in
         [ ("nested loop        " ^ tag, n);
           ("hash join          " ^ tag, h);
           ("hash join w/telem  " ^ tag, ht);
           ("hash join compiled " ^ tag, c) ])
       rows);
  (* the telemetry overhead is a few percent, far below the run-to-run
     drift of sequential bechamel estimates — so measure it with the
     interleaved A/B harness instead of dividing two table rows *)
  let overheads =
    List.map
      (fun (label, _, t, _, opt_srv, _) ->
        let r =
          ab_median_ratio
            ~iters:(if !smoke then 30 else 150)
            (fun enabled ->
              Telemetry.set_enabled enabled;
              ignore (Server.execute opt_srv t.Translator.xquery);
              Telemetry.set_enabled false)
        in
        (label, r))
      cases
  in
  Printf.printf "\nspeedup over the nested loop:\n";
  List.iter
    (fun (label, (s : Datagen.sizes), n, h, _, c) ->
      Printf.printf
        "  %-6s (%4d customers x %4d orders): hash %.2fx, hash+compile %.2fx, \
         telemetry overhead %+.1f%% (interleaved)\n"
        label s.Datagen.customers s.Datagen.orders (ratio n h) (ratio n c)
        ((List.assoc label overheads -. 1.0) *. 100.0))
    rows;
  (* one instrumented execution at the largest scale: its counter
     snapshot and per-span latency histograms are embedded in the JSON
     record *)
  let telemetry_json, obs_json, telemetry_label =
    match List.rev cases with
    | (label, _, t, _, opt_srv, _) :: _ ->
      Telemetry.reset ();
      Obs_stats.reset ();
      Obs_stats.install_span_histograms ();
      Telemetry.set_enabled true;
      ignore (Server.execute opt_srv t.Translator.xquery);
      Telemetry.set_enabled false;
      Obs_stats.uninstall_span_histograms ();
      let hists =
        List.filter
          (fun (_, h) -> not (Histogram.is_empty h))
          (Obs_stats.histograms ())
      in
      let obs =
        "{"
        ^ String.concat ", "
            (List.map
               (fun (name, h) ->
                 Printf.sprintf "%S: %s" name (Histogram.quantiles_to_json h))
               hists)
        ^ "}"
      in
      (Telemetry.metrics_to_json (Telemetry.snapshot ()), obs, label)
    | [] -> ("null", "{}", "none")
  in
  (* machine-readable record for EXPERIMENTS.md / regression tracking *)
  let jf f = if Float.is_nan f then "null" else Printf.sprintf "%.1f" f in
  let jr f = if Float.is_nan f then "null" else Printf.sprintf "%.2f" f in
  let oc = open_out p6_json_path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"P6 join strategy\",\n  \"sql\": \"%s\",\n  \
     \"units\": \"ns per query execution\",\n  \"seed\": %d,\n  \
     \"smoke\": %b,\n  \"scales\": [\n"
    (String.concat " " (String.split_on_char '\n' (String.escaped sql)))
    seed !smoke;
  let n_rows = List.length rows in
  List.iteri
    (fun i (label, (s : Datagen.sizes), n, h, ht, c) ->
      Printf.fprintf oc
        "    { \"label\": \"%s\", \"customers\": %d, \"orders\": %d,\n      \
         \"nested_loop_ns\": %s, \"hash_join_ns\": %s, \
         \"hash_join_telemetry_ns\": %s, \"hash_join_compiled_ns\": %s,\n      \
         \"speedup_hash\": %s, \"speedup_hash_compiled\": %s, \
         \"telemetry_overhead\": %s }%s\n"
        label s.Datagen.customers s.Datagen.orders (jf n) (jf h) (jf ht) (jf c)
        (jr (ratio n h))
        (jr (ratio n c))
        (jr (List.assoc label overheads))
        (if i = n_rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"telemetry_scale\": \"%s\",\n  \"telemetry\": %s,\n  \
     \"obs_histograms\": %s\n}\n"
    telemetry_label telemetry_json obs_json;
  close_out oc;
  Printf.printf "\nwrote %s\n" p6_json_path;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P8: query compilation (interpreted vs compiled evaluator)           *)

let p8 () =
  print_endline
    "\n== P8: server-side query compilation (interpreter vs compiled \
     closures) ==";
  let app = Datagen.application ~seed (sizes 40 150 2 90) in
  let env = Semantic.env_of_application app in
  let srv = Server.create app in
  let queries =
    [ ("scan", "SELECT ORDERID, CUSTOMERID, STATUS FROM ORDERS");
      ( "join-filter",
        "SELECT C.CUSTOMERNAME, O.ORDERID FROM CUSTOMERS C INNER JOIN ORDERS \
         O ON C.CUSTOMERID = O.CUSTOMERID WHERE O.PRIORITY > 2" );
      ( "group-by",
        "SELECT STATUS, COUNT(*) N, MAX(PRIORITY) MX FROM ORDERS GROUP BY \
         STATUS ORDER BY N DESC" ) ]
  in
  let cases =
    List.map
      (fun (name, sql) ->
        let t = Translator.translate env sql in
        let prepared = Server.prepare srv t.Translator.xquery in
        (* the section-4 wrapper through the compiled engine *)
        let wrapped = Translator.for_text_transport t in
        let wrapped_prepared = Server.prepare srv wrapped in
        (name, t, prepared, wrapped_prepared))
      queries
  in
  let tests =
    List.concat_map
      (fun (name, t, prepared, wrapped_prepared) ->
        [ Test.make ~name:("interpreted-" ^ name)
            (Staged.stage (fun () ->
                 ignore (Server.execute srv t.Translator.xquery)));
          Test.make ~name:("compiled-" ^ name)
            (Staged.stage (fun () ->
                 ignore (Server.execute_prepared prepared)));
          Test.make ~name:("compile+run-" ^ name)
            (Staged.stage (fun () ->
                 ignore
                   (Server.execute_prepared
                      (Server.prepare srv t.Translator.xquery))));
          Test.make ~name:("compiled-text-wrapper-" ^ name)
            (Staged.stage (fun () ->
                 ignore (Server.execute_prepared wrapped_prepared))) ])
      cases
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p8" tests) in
  print_table "P8 execution by engine"
    (List.concat_map
       (fun (name, _, _, _) ->
         [ ("interpreted      " ^ name, estimate results ("p8/interpreted-" ^ name));
           ("compiled (hot)   " ^ name, estimate results ("p8/compiled-" ^ name));
           ("compile+run      " ^ name, estimate results ("p8/compile+run-" ^ name));
           ("compiled wrapper " ^ name, estimate results ("p8/compiled-text-wrapper-" ^ name)) ])
       cases);
  List.iter
    (fun (name, _, _, _) ->
      Printf.printf "interpreted/compiled (%s): %.2fx\n" name
        (ratio
           (estimate results ("p8/interpreted-" ^ name))
           (estimate results ("p8/compiled-" ^ name))))
    cases;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P7: prepared statements (translate+compile once) vs ad hoc          *)

let p7 () =
  print_endline
    "\n== P7: prepared statements vs ad hoc statements (driver) ==";
  let app = Datagen.application ~seed (sizes 40 150 2 90) in
  let conn = Connection.connect app in
  let sql_template =
    "SELECT ORDERID, STATUS FROM ORDERS WHERE CUSTOMERID = ?"
  in
  let stmt = Connection.Prepared.prepare conn sql_template in
  let counter = ref 0 in
  let tests =
    [ Test.make ~name:"adhoc"
        (Staged.stage (fun () ->
             incr counter;
             let id = 1 + (!counter mod 40) in
             ignore
               (Result_set.to_rowset
                  (Connection.execute_query conn
                     (Printf.sprintf
                        "SELECT ORDERID, STATUS FROM ORDERS WHERE CUSTOMERID \
                         = %d"
                        id)))));
      Test.make ~name:"prepared"
        (Staged.stage (fun () ->
             incr counter;
             Connection.Prepared.set_int stmt 1 (1 + (!counter mod 40));
             ignore
               (Result_set.to_rowset (Connection.Prepared.execute_query stmt))));
      Test.make ~name:"prepare-only"
        (Staged.stage (fun () ->
             ignore (Connection.Prepared.prepare conn sql_template))) ]
  in
  let results = run_benchmarks (Test.make_grouped ~name:"p7" tests) in
  let adhoc = estimate results "p7/adhoc" in
  let prepared = estimate results "p7/prepared" in
  print_table "P7 parameterized point query through the driver"
    [ ("ad hoc (translate every call)", adhoc);
      ("prepared (compiled once)", prepared);
      ("preparation cost", estimate results "p7/prepare-only") ];
  Printf.printf "\nadhoc/prepared ratio: %.2fx\n" (ratio adhoc prepared);
  flush stdout

(* ------------------------------------------------------------------ *)
(* P9: observability probe overhead (flight recorder, fingerprint      *)
(* stats, telemetry spans) on the driver's hot path                    *)

let p9_json_path = "BENCH_P9.json"

let p9 () =
  print_endline
    "\n== P9: observability probe overhead (recorder / stats / telemetry) ==";
  let app = Datagen.application ~seed (sizes 40 150 2 90) in
  let conn = Connection.connect app in
  let sql =
    "SELECT C.CUSTOMERNAME, O.ORDERID FROM CUSTOMERS C INNER JOIN ORDERS O \
     ON C.CUSTOMERID = O.CUSTOMERID WHERE O.PRIORITY > 1"
  in
  ignore (Connection.execute_query conn sql) (* warm the translation cache *);
  let all_off () =
    Telemetry.set_enabled false;
    Obs_stats.set_enabled false;
    Recorder.set_enabled false;
    Obs_stats.uninstall_span_histograms ()
  in
  let iters = if !smoke then 30 else 150 in
  (* each configuration is measured interleaved against all-probes-off;
     the enable/disable flips inside the window are single ref writes *)
  let overhead label switch_on =
    all_off ();
    let r =
      ab_median_ratio ~iters (fun enabled ->
          if enabled then switch_on () else all_off ();
          ignore (Connection.execute_query conn sql))
    in
    all_off ();
    (label, r)
  in
  let overheads =
    [
      overhead "recorder-only" (fun () -> Recorder.set_enabled true);
      overhead "stats+recorder" (fun () ->
          Recorder.set_enabled true;
          Obs_stats.set_enabled true);
      overhead "telemetry+stats+recorder" (fun () ->
          Recorder.set_enabled true;
          Obs_stats.set_enabled true;
          Obs_stats.install_span_histograms ();
          Telemetry.set_enabled true);
    ]
  in
  (* restore the library defaults the other experiments run under *)
  Recorder.set_enabled true;
  Printf.printf "\noverhead vs all probes disabled (interleaved medians):\n";
  List.iter
    (fun (label, r) ->
      Printf.printf "  %-26s %+.1f%%\n" label ((r -. 1.0) *. 100.0))
    overheads;
  let jr f = if Float.is_nan f then "null" else Printf.sprintf "%.3f" f in
  let oc = open_out p9_json_path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"P9 observability overhead\",\n  \"sql\": \"%s\",\n  \
     \"units\": \"ratio vs probes-disabled\",\n  \"seed\": %d,\n  \
     \"smoke\": %b,\n  \"iters\": %d,\n  \"overheads\": [\n"
    (String.concat " " (String.split_on_char '\n' (String.escaped sql)))
    seed !smoke iters;
  let n = List.length overheads in
  List.iteri
    (fun i (label, r) ->
      Printf.fprintf oc "    { \"label\": \"%s\", \"ratio\": %s }%s\n" label
        (jr r)
        (if i = n - 1 then "" else ","))
    overheads;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" p9_json_path;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P10: scan materialization (per-plan sharing + cross-query cache)    *)

let p10_json_path = "BENCH_P10.json"

let p10 () =
  print_endline
    "\n== P10: scan materialization (shared-scan hoist + revision-aware \
     cache) ==";
  let app = Datagen.application ~seed (sizes 300 400 2 200) in
  (* a self-join (two occurrences of the same scan) whose filter holds
     an uncorrelated subquery (a third scan, re-invoked per row unless
     hoisted) — the paper's repeated-data-service-call shape *)
  let sql =
    "SELECT A.CUSTOMERNAME, B.CITY FROM CUSTOMERS A, CUSTOMERS B WHERE \
     A.CUSTOMERID = B.CUSTOMERID AND B.TIER > 1 AND A.CUSTOMERID IN \
     (SELECT CUSTOMERID FROM ORDERS WHERE PRIORITY > 2)"
  in
  let iters = if !smoke then 20 else 100 in
  (* Each phase interleaves a cache-on connection against a cache-off
     one (same app, same translation cache state) and compares medians
     of the same window; speedup = off/on. *)
  let phase label ~prep =
    let conn_on = Connection.connect app in
    let conn_off = Connection.connect ~scan_cache:false app in
    (* warm both translation caches and the scan cache *)
    ignore (Connection.execute_query conn_on sql);
    ignore (Connection.execute_query conn_off sql);
    let r =
      ab_median_ratio ~iters (fun enabled ->
          let conn = if enabled then conn_on else conn_off in
          prep conn;
          ignore (Connection.execute_query conn sql))
    in
    (label, 1.0 /. r, Aqua_dsp.Scan_cache.stats (Connection.scan_cache conn_on))
  in
  let phases =
    [ (* warm: scans stay resident across queries — the shipping path *)
      phase "warm" ~prep:(fun _ -> ());
      (* cold: the cache-on side starts every query empty, so it pays
         materialization AND admission *)
      phase "cold" ~prep:(fun conn ->
          Aqua_dsp.Scan_cache.flush (Connection.scan_cache conn));
      (* invalidated: a metadata revision bump before every query, the
         worst case for a revision-checked cache *)
      phase "invalidated" ~prep:(fun _ ->
          app.Artifact.revision <- app.Artifact.revision + 1) ]
  in
  Printf.printf "\nspeedup vs --no-scan-cache (interleaved medians):\n";
  List.iter
    (fun (label, s, _) -> Printf.printf "  %-12s %.2fx\n" label s)
    phases;
  let _, _, warm_stats = List.hd phases in
  let module SC = Aqua_dsp.Scan_cache in
  Printf.printf
    "warm cache counters: hits=%d misses=%d evictions=%d invalidations=%d \
     entries=%d bytes=%d\n"
    warm_stats.SC.hits warm_stats.SC.misses warm_stats.SC.evictions
    warm_stats.SC.invalidations warm_stats.SC.entries warm_stats.SC.bytes;
  let jr f = if Float.is_nan f then "null" else Printf.sprintf "%.3f" f in
  let oc = open_out p10_json_path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"P10 scan materialization\",\n  \"sql\": \"%s\",\n  \
     \"units\": \"speedup vs scan cache disabled\",\n  \"seed\": %d,\n  \
     \"smoke\": %b,\n  \"iters\": %d,\n  \"phases\": [\n"
    (String.concat " " (String.split_on_char '\n' (String.escaped sql)))
    seed !smoke iters;
  let n = List.length phases in
  List.iteri
    (fun i (label, s, _) ->
      Printf.fprintf oc "    { \"label\": \"%s\", \"speedup\": %s }%s\n" label
        (jr s)
        (if i = n - 1 then "" else ","))
    phases;
  Printf.fprintf oc
    "  ],\n  \"cache\": { \"hits\": %d, \"misses\": %d, \"evictions\": %d, \
     \"invalidations\": %d, \"entries\": %d, \"bytes\": %d }\n}\n"
    warm_stats.SC.hits warm_stats.SC.misses warm_stats.SC.evictions
    warm_stats.SC.invalidations warm_stats.SC.entries warm_stats.SC.bytes;
  close_out oc;
  Printf.printf "\nwrote %s\n" p10_json_path;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P12: batched FLWOR execution — batch-size sweep vs row-at-a-time    *)

let p12_json_path = "BENCH_P12.json"

let p12 () =
  print_endline
    "\n== P12: batched FLWOR execution, batch-size sweep vs row-at-a-time ==";
  (* the P6 join workload and scales: the optimizer's hash-join plan,
     executed by the batch engine at several batch sizes against the
     row-at-a-time pipeline *)
  let scales =
    [ ("small", sizes 50 200 2 60); ("medium", sizes 150 600 2 180);
      ("large", sizes 300 1200 2 360) ]
  in
  let sql =
    "SELECT C.CUSTOMERNAME, O.ORDERID FROM CUSTOMERS C, ORDERS O WHERE \
     C.CUSTOMERID = O.CUSTOMERID AND O.PRIORITY > 1"
  in
  let batch_sizes = [ 1; 64; 256; 1024; 4096 ] in
  let default_size = Aqua_xqeval.Batch.size () in
  let restore () = Aqua_xqeval.Batch.set_size default_size in
  Fun.protect ~finally:restore @@ fun () ->
  let result_rows items =
    List.fold_left
      (fun acc item ->
        match item with
        | Aqua_xml.Item.Node (Aqua_xml.Node.Element e)
          when Aqua_xml.Node.local_name e.Aqua_xml.Node.name = "RECORDSET" ->
          acc
          + List.length
              (Aqua_xml.Node.children_elements (Aqua_xml.Node.Element e))
        | _ -> acc + 1)
      0 items
  in
  let cases =
    List.map
      (fun (label, s) ->
        let app = Datagen.application ~seed s in
        let env = Semantic.env_of_application app in
        let t = Translator.translate env sql in
        (* the shipping configuration: both engines share one
           materialized scan cache (as Connection.connect wires it), so
           the sweep times FLWOR execution, not repeated scan
           materialization *)
        let scans = Aqua_dsp.Scan_cache.create app in
        let srv_row = Server.create ~vectorize:false ~cache:scans app in
        let srv_vec = Server.create ~cache:scans app in
        let rows = result_rows (Server.execute srv_row t.Translator.xquery) in
        (label, s, t, srv_row, srv_vec, rows))
      scales
  in
  (* sanity: every batch size must agree with the row-at-a-time oracle
     before we time anything *)
  List.iter
    (fun (label, _, t, srv_row, srv_vec, _) ->
      let ser items = Aqua_xml.Serialize.sequence_to_string items in
      let oracle = ser (Server.execute srv_row t.Translator.xquery) in
      List.iter
        (fun bs ->
          Aqua_xqeval.Batch.set_size bs;
          let got = ser (Server.execute srv_vec t.Translator.xquery) in
          restore ();
          if got <> oracle then
            failwith
              (Printf.sprintf
                 "P12 %s: batch size %d disagrees with row-at-a-time \
                  (BENCH_SEED=%d)"
                 label bs seed))
        batch_sizes)
    cases;
  (* Interleaved round-robin medians: one bechamel estimate per
     configuration would be taken tens of seconds apart, and the
     machine drifts by more than the few-percent batch-size effects
     under measurement (same rationale as [ab_median_ratio]).  Each
     round times one execution of every configuration back to back;
     each configuration reports the median of its rounds. *)
  let iters = if !smoke then 15 else 301 in
  let measured =
    List.map
      (fun (label, s, t, srv_row, srv_vec, rows) ->
        let time f =
          let t0 = Mclock.now () in
          f ();
          Int64.to_float (Int64.sub (Mclock.now ()) t0)
        in
        let run_row () = ignore (Server.execute srv_row t.Translator.xquery) in
        let run_vec bs () =
          Aqua_xqeval.Batch.set_size bs;
          ignore (Server.execute srv_vec t.Translator.xquery)
        in
        for _ = 1 to 5 do
          run_row ();
          List.iter (fun bs -> run_vec bs ()) batch_sizes
        done;
        let row_samples = ref [] in
        let vec_samples = List.map (fun bs -> (bs, ref [])) batch_sizes in
        for _ = 1 to iters do
          row_samples := time run_row :: !row_samples;
          List.iter
            (fun (bs, acc) -> acc := time (run_vec bs) :: !acc)
            vec_samples
        done;
        restore ();
        let median l =
          let sorted = List.sort compare l in
          List.nth sorted (List.length l / 2)
        in
        let row_ns = median !row_samples in
        let per_size =
          List.map (fun (bs, acc) -> (bs, median !acc)) vec_samples
        in
        (label, s, rows, row_ns, per_size))
      cases
  in
  print_table "P12 batch-size sweep"
    (List.concat_map
       (fun (label, (s : Datagen.sizes), _, row_ns, per_size) ->
         let tag =
           Printf.sprintf "%-6s (%dx%d)" label s.Datagen.customers
             s.Datagen.orders
         in
         (Printf.sprintf "row-at-a-time %s" tag, row_ns)
         :: List.map
              (fun (bs, ns) -> (Printf.sprintf "batch %-5d     %s" bs tag, ns))
              per_size)
       measured);
  Printf.printf "\nper-row cost and speedup at batch size 1024:\n";
  List.iter
    (fun (label, (s : Datagen.sizes), rows, row_ns, per_size) ->
      let b1024 = List.assoc 1024 per_size in
      Printf.printf
        "  %-6s (%4d customers x %4d orders, %d rows): row %.1f ns/row, \
         batch@1024 %.1f ns/row, speedup %.2fx\n"
        label s.Datagen.customers s.Datagen.orders rows
        (row_ns /. float_of_int (max 1 rows))
        (b1024 /. float_of_int (max 1 rows))
        (ratio row_ns b1024))
    measured;
  (* one instrumented batched execution at the largest scale: batch
     traffic counters go into the JSON record *)
  let telemetry_json, telemetry_label =
    match List.rev cases with
    | (label, _, t, _, srv_vec, _) :: _ ->
      Telemetry.reset ();
      Telemetry.set_enabled true;
      ignore (Server.execute srv_vec t.Translator.xquery);
      Telemetry.set_enabled false;
      (Telemetry.metrics_to_json (Telemetry.snapshot ()), label)
    | [] -> ("null", "none")
  in
  let jf f = if Float.is_nan f then "null" else Printf.sprintf "%.1f" f in
  let jr f = if Float.is_nan f then "null" else Printf.sprintf "%.2f" f in
  let oc = open_out p12_json_path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"P12 batched FLWOR execution\",\n  \"sql\": \
     \"%s\",\n  \"units\": \"ns per query execution; ns_per_row divides by \
     output rows\",\n  \"seed\": %d,\n  \"smoke\": %b,\n  \"default_batch_size\": \
     %d,\n  \"batch_sizes\": [%s],\n  \"scales\": [\n"
    (String.concat " " (String.split_on_char '\n' (String.escaped sql)))
    seed !smoke default_size
    (String.concat ", " (List.map string_of_int batch_sizes));
  let n_rows = List.length measured in
  List.iteri
    (fun i (label, (s : Datagen.sizes), rows, row_ns, per_size) ->
      let b1024 = List.assoc 1024 per_size in
      let per_row ns = ns /. float_of_int (max 1 rows) in
      Printf.fprintf oc
        "    { \"label\": \"%s\", \"customers\": %d, \"orders\": %d, \
         \"rows\": %d,\n      \"row_at_a_time_ns\": %s, \
         \"row_at_a_time_ns_per_row\": %s,\n      \"batched\": [\n"
        label s.Datagen.customers s.Datagen.orders rows (jf row_ns)
        (jr (per_row row_ns));
      let n_sizes = List.length per_size in
      List.iteri
        (fun j (bs, ns) ->
          Printf.fprintf oc
            "        { \"batch_size\": %d, \"ns\": %s, \"ns_per_row\": %s }%s\n"
            bs (jf ns)
            (jr (per_row ns))
            (if j = n_sizes - 1 then "" else ","))
        per_size;
      Printf.fprintf oc "      ],\n      \"speedup_at_1024\": %s }%s\n"
        (jr (ratio row_ns b1024))
        (if i = n_rows - 1 then "" else ","))
    measured;
  Printf.fprintf oc
    "  ],\n  \"telemetry_scale\": \"%s\",\n  \"telemetry\": %s\n}\n"
    telemetry_label telemetry_json;
  close_out oc;
  Printf.printf "\nwrote %s\n" p12_json_path;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P11: concurrent serving throughput — a mixed read workload replayed
   by 1/2/4/8 domains through a session pool over ONE shared connection
   (shared translation cache, metadata cache, materialized scan cache).
   Closed loop: each domain issues its next query as soon as the
   previous one returns; per-domain latency histograms are merged for
   the leg's p50/p90/p99, QPS is total completed ops over wall time. *)

module Mcore = Aqua_multicore.Mcore
module Session_pool = Aqua_driver.Session_pool

let p11_json_path = "BENCH_P11.json"

let p11_domain_counts () =
  match Sys.getenv_opt "AQUA_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4; 8 ]
  | Some s ->
    let parsed =
      List.filter_map int_of_string_opt (String.split_on_char ',' s)
    in
    let parsed = List.filter (fun d -> d >= 1) parsed in
    if parsed = [] then [ 1; 2; 4; 8 ] else parsed

(* the mixed read workload: point lookup, filtered scan, equi-join,
   grouped aggregate — the ad-hoc JDBC-reporting shapes of the paper *)
let p11_workload =
  [ "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = 17";
    "SELECT CUSTOMERNAME, CREDIT FROM CUSTOMERS WHERE TIER > 1";
    "SELECT C.CUSTOMERNAME, O.ORDERID FROM CUSTOMERS C, ORDERS O WHERE \
     C.CUSTOMERID = O.CUSTOMERID AND O.PRIORITY > 2";
    "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY" ]

let p11 () =
  print_endline
    "\n== P11: concurrent serving throughput (domains sharing one \
     connection) ==";
  let app = Datagen.application ~seed (sizes 200 300 2 150) in
  let conn = Connection.connect app in
  (* warm every cache once so every leg measures the same steady
     state, not leg-one paying all the cold misses *)
  List.iter (fun sql -> ignore (Connection.execute_query conn sql)) p11_workload;
  let stmts = Array.of_list p11_workload in
  let nstmts = Array.length stmts in
  let ops_per_domain = if !smoke then 60 else 600 in
  let leg domains =
    let pool = Session_pool.create ~capacity:domains conn in
    let run_domain d () =
      let h = Histogram.create () in
      for i = 0 to ops_per_domain - 1 do
        let sql = stmts.((d + i) mod nstmts) in
        let t0 = Mclock.now () in
        ignore (Session_pool.execute ~wait_ms:60_000 pool sql);
        Histogram.record h (Int64.sub (Mclock.now ()) t0)
      done;
      h
    in
    let t0 = Mclock.now () in
    let outcomes =
      Mcore.Domains.parallel (List.init domains (fun d -> run_domain d))
    in
    let wall_ns = Int64.sub (Mclock.now ()) t0 in
    let merged = Histogram.create () in
    List.iter
      (function
        | Ok h -> Histogram.merge_into ~into:merged h
        | Error e -> raise e)
      outcomes;
    let ops = domains * ops_per_domain in
    let qps = float_of_int ops /. (Int64.to_float wall_ns /. 1e9) in
    (domains, ops, wall_ns, qps, merged)
  in
  let legs = List.map leg (p11_domain_counts ()) in
  let cores = Mcore.num_cores () in
  Printf.printf "cores=%d multicore=%b ops/domain=%d\n\n" cores
    Mcore.multicore ops_per_domain;
  Printf.printf "  %-8s %-8s %-12s %-10s %-10s %-10s\n" "domains" "ops"
    "qps" "p50" "p90" "p99";
  List.iter
    (fun (d, ops, _, qps, h) ->
      Printf.printf "  %-8d %-8d %-12.0f %-10s %-10s %-10s\n" d ops qps
        (pretty_ns (Int64.to_float (Histogram.p50 h)))
        (pretty_ns (Int64.to_float (Histogram.p90 h)))
        (pretty_ns (Int64.to_float (Histogram.p99 h))))
    legs;
  let qps_at n =
    List.find_map
      (fun (d, _, _, qps, _) -> if d = n then Some qps else None)
      legs
  in
  let speedup_4v1 =
    match (qps_at 1, qps_at 4) with
    | Some q1, Some q4 when q1 > 0.0 -> Some (q4 /. q1)
    | _ -> None
  in
  (match speedup_4v1 with
  | Some s -> Printf.printf "\n4-domain vs 1-domain throughput: %.2fx\n" s
  | None -> ());
  let oc = open_out p11_json_path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"P11 concurrent serving throughput\",\n  \
     \"units\": \"queries per second; latency quantiles in ns\",\n  \
     \"seed\": %d,\n  \"smoke\": %b,\n  \"cores\": %d,\n  \
     \"multicore\": %b,\n  \"ops_per_domain\": %d,\n  \"legs\": [\n"
    seed !smoke cores Mcore.multicore ops_per_domain;
  let n = List.length legs in
  List.iteri
    (fun i (d, ops, wall_ns, qps, h) ->
      Printf.fprintf oc
        "    { \"domains\": %d, \"ops\": %d, \"wall_ns\": %Ld, \"qps\": \
         %.3f, \"p50_ns\": %Ld, \"p90_ns\": %Ld, \"p99_ns\": %Ld }%s\n"
        d ops wall_ns qps (Histogram.p50 h) (Histogram.p90 h)
        (Histogram.p99 h)
        (if i = n - 1 then "" else ","))
    legs;
  Printf.fprintf oc "  ],\n  \"speedup_4v1\": %s\n}\n"
    (match speedup_4v1 with
    | Some s -> Printf.sprintf "%.3f" s
    | None -> "null");
  close_out oc;
  Printf.printf "\nwrote %s\n" p11_json_path;
  flush stdout

(* ------------------------------------------------------------------ *)
(* P13: the wire-protocol front end under an open-loop arrival process.
   Phase 1 measures closed-loop saturation throughput (persistent
   connections, each client fires its next query on completion).
   Phase 2 replays a deterministic open-loop schedule — arrival i is
   due at i/rate seconds, regardless of how the server is coping — at
   0.5x and 2.0x the measured saturation, connection-per-query, plus a
   2.0x leg with net-layer failpoints armed.  The claim under test is
   the robustness contract: overload degrades into fast typed sheds
   (53300/08006), never into losing admitted queries, and every
   offered arrival is accounted for as completed or shed. *)

module Failpoint = Aqua_resilience.Failpoint
module Netserver = Aqua_net.Netserver
module Net_client = Aqua_net.Client

let p13_json_path = "BENCH_P13.json"
let p13_fault_spec = "net.session=flaky(0.1);net.read=flaky(0.05)"

(* only CUSTOMERS(CUSTOMERID, CUSTOMERNAME, CITY, TIER) — columns both
   the synthetic Datagen catalog (in-process server) and the demo
   catalog (an external `sql2xq serve` via AQUA_NET_ADDR) provide, so
   every arrival is a valid query against either backend *)
let p13_workload =
  [ "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = 17";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE TIER > 1";
    "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY";
    "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERNAME" ]

(* AQUA_NET_ADDR=host:port points the bench at an externally started
   `sql2xq serve` instead of the in-process server (failpoints then
   only make sense if the external server armed its own). *)
let p13_external_addr () =
  match Sys.getenv_opt "AQUA_NET_ADDR" with
  | None | Some "" -> None
  | Some s -> (
    match String.rindex_opt s ':' with
    | Some i -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port -> Some (String.sub s 0 i, port)
      | None -> None)
    | None -> None)

let p13 () =
  print_endline
    "\n== P13: wire front end — open-loop arrivals, admission shedding ==";
  let external_addr = p13_external_addr () in
  if (not Mcore.multicore) && external_addr = None then begin
    (* the single-domain shim cannot host a background server; emit a
       schema-valid file that says so instead of fake numbers *)
    print_endline "single-domain build: skipping (no background server)";
    let oc = open_out p13_json_path in
    Printf.fprintf oc
      "{\n  \"experiment\": \"P13 wire-protocol serving\",\n  \"units\": \
       \"queries per second; latency quantiles in ns\",\n  \"seed\": %d,\n  \
       \"smoke\": %b,\n  \"multicore\": false,\n  \"saturation\": null,\n  \
       \"legs\": []\n}\n"
      seed !smoke;
    close_out oc;
    Printf.printf "wrote %s\n" p13_json_path;
    flush stdout
  end
  else begin
    let app = Datagen.application ~seed (sizes 200 300 2 150) in
    let stmts = Array.of_list p13_workload in
    let nstmts = Array.length stmts in
    let srv, host, port =
      match external_addr with
      | Some (host, port) ->
        Printf.printf "driving external server at %s:%d\n" host port;
        (None, host, port)
      | None ->
        let conn = Connection.connect app in
        let config =
          { Netserver.default_config with
            port = 0;
            pool_size = 4;
            workers = 4;
            queue_depth = (if !smoke then 4 else 8);
            borrow_wait_ms = 200;
          }
        in
        let srv = Netserver.start ~config conn in
        (Some srv, "127.0.0.1", Netserver.port srv)
    in
    Fun.protect ~finally:(fun () -> Option.iter Netserver.drain srv)
    @@ fun () ->
    (* -------- phase 1: closed-loop saturation (persistent conns) --- *)
    let sat_clients = if !smoke then 2 else 4 in
    let sat_ops = if !smoke then 40 else 300 in
    let sat_client c () =
      match Net_client.connect ~host ~port () with
      | Error (code, msg) -> failwith (Printf.sprintf "[%s] %s" code msg)
      | Ok t ->
        Fun.protect ~finally:(fun () -> Net_client.close t) @@ fun () ->
        let h = Histogram.create () in
        let done_ = ref 0 in
        for i = 0 to sat_ops - 1 do
          let sql = stmts.((c + i) mod nstmts) in
          let t0 = Mclock.now () in
          match Net_client.query t sql with
          | Ok _ ->
            incr done_;
            Histogram.record h (Int64.sub (Mclock.now ()) t0)
          | Error _ -> ()
        done;
        (!done_, h)
    in
    let t0 = Mclock.now () in
    let outcomes =
      Mcore.Domains.parallel (List.init sat_clients (fun c -> sat_client c))
    in
    let sat_wall = Int64.sub (Mclock.now ()) t0 in
    let sat_hist = Histogram.create () in
    let sat_done =
      List.fold_left
        (fun acc -> function
          | Ok (n, h) ->
            Histogram.merge_into ~into:sat_hist h;
            acc + n
          | Error e -> raise e)
        0 outcomes
    in
    let sat_qps =
      float_of_int sat_done /. (Int64.to_float sat_wall /. 1e9)
    in
    Printf.printf
      "saturation (closed loop, %d clients): %.0f qps, p50 %s, p99 %s\n"
      sat_clients sat_qps
      (pretty_ns (Int64.to_float (Histogram.p50 sat_hist)))
      (pretty_ns (Int64.to_float (Histogram.p99 sat_hist)));
    (* -------- phase 2: open-loop legs, connection per query --------- *)
    let offered = if !smoke then 80 else 400 in
    let fleet = if !smoke then 8 else 12 in
    let leg (label, rate_factor, failpoints) =
      (match failpoints with Some spec -> Failpoint.arm spec | None -> ());
      Fun.protect
        ~finally:(fun () ->
          if failpoints <> None then Failpoint.disarm ())
      @@ fun () ->
      let rate = Float.max 1.0 (sat_qps *. rate_factor) in
      let interval_ns = 1e9 /. rate in
      let next = Atomic.make 0 in
      let shed_lock = Mutex.create () in
      let shed : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let shed_one code =
        Mutex.protect shed_lock (fun () ->
            Hashtbl.replace shed code
              (1 + Option.value ~default:0 (Hashtbl.find_opt shed code)))
      in
      let t0 = Mclock.now () in
      let worker _w () =
        let h = Histogram.create () in
        let completed = ref 0 in
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i >= offered then (!completed, h)
          else begin
            (* the arrival process is the schedule, not the server: op i
               is due at t0 + i/rate whether or not the fleet is late *)
            let due =
              Int64.add t0 (Int64.of_float (float_of_int i *. interval_ns))
            in
            let now = Mclock.now () in
            if Int64.compare now due < 0 then
              Unix.sleepf (Int64.to_float (Int64.sub due now) /. 1e9);
            (match Net_client.connect ~timeout_ms:5_000 ~host ~port () with
            | Error (code, _) -> shed_one code
            | Ok t ->
              (match Net_client.query t stmts.(i mod nstmts) with
              | Ok _ ->
                incr completed;
                (* response time from scheduled arrival: queueing delay
                   under overload is the signal, so it must count *)
                Histogram.record h (Int64.sub (Mclock.now ()) due)
              | Error (code, _) -> shed_one code);
              Net_client.close t);
            go ()
          end
        in
        go ()
      in
      let outcomes =
        Mcore.Domains.parallel (List.init fleet (fun w -> worker w))
      in
      let merged = Histogram.create () in
      let completed =
        List.fold_left
          (fun acc -> function
            | Ok (n, h) ->
              Histogram.merge_into ~into:merged h;
              acc + n
            | Error e -> raise e)
          0 outcomes
      in
      let shed_total = Hashtbl.fold (fun _ n acc -> n + acc) shed 0 in
      let shed_codes =
        List.sort compare
          (Hashtbl.fold (fun c n acc -> (c, n) :: acc) shed [])
      in
      Printf.printf
        "  %-14s rate %-7.0f offered %-5d completed %-5d shed %-4d %s p99 %s\n"
        label rate offered completed shed_total
        (String.concat " "
           (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) shed_codes))
        (pretty_ns (Int64.to_float (Histogram.p99 merged)));
      (label, rate, failpoints, completed, shed_total, shed_codes, merged)
    in
    print_endline "open-loop legs (connection per query):";
    let legs =
      List.map leg
        [ ("0.5x", 0.5, None);
          ("2.0x", 2.0, None);
          ("2.0x+faults", 2.0, Some p13_fault_spec) ]
    in
    let oc = open_out p13_json_path in
    Printf.fprintf oc
      "{\n  \"experiment\": \"P13 wire-protocol serving\",\n  \"units\": \
       \"queries per second; latency quantiles in ns\",\n  \"seed\": %d,\n  \
       \"smoke\": %b,\n  \"multicore\": true,\n  \"external\": %b,\n  \
       \"server\": { \"pool_size\": 4, \"workers\": 4, \"queue_depth\": %d \
       },\n  \"saturation\": { \"clients\": %d, \"completed\": %d, \"qps\": \
       %.3f, \"p50_ns\": %Ld, \"p99_ns\": %Ld },\n  \"legs\": [\n"
      seed !smoke
      (external_addr <> None)
      (if !smoke then 4 else 8)
      sat_clients sat_done sat_qps (Histogram.p50 sat_hist)
      (Histogram.p99 sat_hist);
    let n = List.length legs in
    List.iteri
      (fun i (label, rate, failpoints, completed, shed_total, shed_codes, h) ->
        Printf.fprintf oc
          "    { \"label\": %S, \"rate_qps\": %.3f, \"offered\": %d, \
           \"completed\": %d, \"shed\": %d, \"shed_by_code\": { %s }, \
           \"failpoints\": %s, \"p50_ns\": %Ld, \"p90_ns\": %Ld, \
           \"p99_ns\": %Ld }%s\n"
          label rate offered completed shed_total
          (String.concat ", "
             (List.map
                (fun (c, cnt) -> Printf.sprintf "\"%s\": %d" c cnt)
                shed_codes))
          (match failpoints with
          | Some spec -> Printf.sprintf "%S" spec
          | None -> "null")
          (Histogram.p50 h) (Histogram.p90 h) (Histogram.p99 h)
          (if i = n - 1 then "" else ","))
      legs;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n" p13_json_path;
    (match srv with
    | Some s ->
      let sm = Netserver.summary s in
      Printf.printf
        "server summary: connections=%d queries=%d shed_queue=%d \
         shed_breaker=%d protocol_errors=%d\n"
        sm.Netserver.connections sm.queries sm.shed_queue sm.shed_breaker
        sm.protocol_errors
    | None -> ());
    flush stdout
  end

(* ------------------------------------------------------------------ *)

(* P14: what observability costs on the serve path.  Four closed-loop
   legs over the wire, identical except for trace wiring: no sink at
   all (baseline), a sink with 0% head sampling (the production
   default — every query mints and threads a trace context, none emit),
   1%, and 100%.  The claim under test is that the always-on plumbing
   is free: the gated comparison is baseline vs sink@0%, and
   validate.exe rejects the run if 0%-sampling throughput falls more
   than the bound below baseline.  The 1%/100% legs are informational
   (they buy NDJSON span trees, counted per leg). *)

let p14_json_path = "BENCH_P14.json"

let p14 () =
  print_endline "\n== P14: trace-sampling overhead on the serve path ==";
  if not Mcore.multicore then begin
    print_endline "single-domain build: skipping (no background server)";
    let oc = open_out p14_json_path in
    Printf.fprintf oc
      "{\n  \"experiment\": \"P14 trace-sampling overhead\",\n  \"units\": \
       \"queries per second; latency quantiles in ns\",\n  \"seed\": %d,\n  \
       \"smoke\": %b,\n  \"multicore\": false,\n  \"baseline_qps\": null,\n  \
       \"sampled0_qps\": null,\n  \"overhead\": null,\n  \"legs\": []\n}\n"
      seed !smoke;
    close_out oc;
    Printf.printf "wrote %s\n" p14_json_path;
    flush stdout
  end
  else begin
    let app = Datagen.application ~seed (sizes 200 300 2 150) in
    let stmts = Array.of_list p13_workload in
    let nstmts = Array.length stmts in
    let clients = if !smoke then 2 else 4 in
    let ops = if !smoke then 50 else 400 in
    (* the serve path's production posture: telemetry, per-fingerprint
       stats and span histograms all on, identical in every leg *)
    Telemetry.set_enabled true;
    Obs_stats.set_enabled true;
    Obs_stats.install_span_histograms ();
    Fun.protect
      ~finally:(fun () ->
        Obs_stats.uninstall_span_histograms ();
        Obs_stats.set_enabled false;
        Telemetry.set_enabled false;
        Telemetry.set_trace_sink None)
    @@ fun () ->
    let leg (label, sample, with_sink) =
      Telemetry.reset ();
      Obs_stats.reset ();
      let trace_lines = Atomic.make 0 in
      Telemetry.set_trace_sink
        (if with_sink then
           Some (fun _line -> Atomic.incr trace_lines)
         else None);
      let conn = Connection.connect app in
      let config =
        { Netserver.default_config with
          port = 0;
          pool_size = 4;
          workers = 4;
          queue_depth = 16;
          trace_sample = sample;
        }
      in
      let srv = Netserver.start ~config conn in
      Fun.protect
        ~finally:(fun () ->
          Netserver.drain srv;
          Telemetry.set_trace_sink None)
      @@ fun () ->
      let host = "127.0.0.1" and port = Netserver.port srv in
      let client c () =
        match Net_client.connect ~host ~port () with
        | Error (code, msg) -> failwith (Printf.sprintf "[%s] %s" code msg)
        | Ok t ->
          Fun.protect ~finally:(fun () -> Net_client.close t) @@ fun () ->
          let h = Histogram.create () in
          let done_ = ref 0 in
          for i = 0 to ops - 1 do
            let sql = stmts.((c + i) mod nstmts) in
            let t0 = Mclock.now () in
            match Net_client.query t sql with
            | Ok _ ->
              incr done_;
              Histogram.record h (Int64.sub (Mclock.now ()) t0)
            | Error (code, msg) ->
              failwith (Printf.sprintf "leg %s: [%s] %s" label code msg)
          done;
          (!done_, h)
      in
      let t0 = Mclock.now () in
      let outcomes =
        Mcore.Domains.parallel (List.init clients (fun c -> client c))
      in
      let wall = Int64.sub (Mclock.now ()) t0 in
      let merged = Histogram.create () in
      let completed =
        List.fold_left
          (fun acc -> function
            | Ok (n, h) ->
              Histogram.merge_into ~into:merged h;
              acc + n
            | Error e -> raise e)
          0 outcomes
      in
      let qps = float_of_int completed /. (Int64.to_float wall /. 1e9) in
      let lines = Atomic.get trace_lines in
      Printf.printf
        "  %-12s sample %-4.2f sink %-5b completed %-5d %.0f qps, p50 %s, \
         p99 %s, trace lines %d\n"
        label sample with_sink completed qps
        (pretty_ns (Int64.to_float (Histogram.p50 merged)))
        (pretty_ns (Int64.to_float (Histogram.p99 merged)))
        lines;
      flush stdout;
      (label, sample, with_sink, completed, qps, merged, lines)
    in
    let legs =
      List.map leg
        [ ("baseline", 0.0, false);
          ("sink-0pct", 0.0, true);
          ("sink-1pct", 0.01, true);
          ("sink-100pct", 1.0, true) ]
    in
    let find label =
      List.find (fun (l, _, _, _, _, _, _) -> l = label) legs
    in
    let qps_of (_, _, _, _, qps, _, _) = qps in
    let baseline_qps = qps_of (find "baseline") in
    let sampled0_qps = qps_of (find "sink-0pct") in
    let overhead = (baseline_qps -. sampled0_qps) /. baseline_qps in
    Printf.printf
      "0%%-sampling serve-path overhead vs baseline: %.1f%%\n"
      (100.0 *. overhead);
    let oc = open_out p14_json_path in
    Printf.fprintf oc
      "{\n  \"experiment\": \"P14 trace-sampling overhead\",\n  \"units\": \
       \"queries per second; latency quantiles in ns\",\n  \"seed\": %d,\n  \
       \"smoke\": %b,\n  \"multicore\": true,\n  \"server\": { \
       \"pool_size\": 4, \"workers\": 4, \"clients\": %d, \"ops_per_client\": \
       %d },\n  \"baseline_qps\": %.3f,\n  \"sampled0_qps\": %.3f,\n  \
       \"overhead\": %.4f,\n  \"legs\": [\n"
      seed !smoke clients ops baseline_qps sampled0_qps overhead;
    let n = List.length legs in
    List.iteri
      (fun i (label, sample, with_sink, completed, qps, h, lines) ->
        Printf.fprintf oc
          "    { \"label\": %S, \"trace_sample\": %.2f, \"sink\": %b, \
           \"completed\": %d, \"qps\": %.3f, \"p50_ns\": %Ld, \"p90_ns\": \
           %Ld, \"p99_ns\": %Ld, \"trace_lines\": %d }%s\n"
          label sample with_sink completed qps (Histogram.p50 h)
          (Histogram.p90 h) (Histogram.p99 h) lines
          (if i = n - 1 then "" else ","))
      legs;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n" p14_json_path;
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* P15: columnar batch layout vs the row-snapshot batch engine.        *)

let p15_json_path = "BENCH_P15.json"

(* Interleaved A/B medians (same discipline as P12): the effects under
   measurement — kernelized GROUP BY, required-column pruning — are
   tens of percent, but two bechamel estimates taken far apart still
   drift by more.  Each iteration times one batched and one columnar
   execution back to back; each configuration reports its median.

   Workload kinds: "aggregation" is the kernelized GROUP BY story —
   validate.exe hard-rejects a columnar slowdown and --min-speedup
   gates every scale's speedup_at_1024; "join-aggregation" (hash join
   feeding kernels, where probe/emit cost dilutes the kernel win) is
   hard-gated against slowdown only; "wide" is the pruning story —
   many bound variables, few live columns — and is informational. *)
let p15 () =
  print_endline
    "\n== P15: columnar batch layout vs row-snapshot batches ==";
  let scales =
    [ ("small", sizes 100 1600 2 1600); ("medium", sizes 200 3200 2 3200);
      ("large", sizes 300 5000 2 5000) ]
  in
  let workloads =
    [ ( "agg-group", "aggregation",
        "SELECT O.CUSTOMERID, COUNT(*) N, SUM(O.PRIORITY) S, \
         AVG(O.PRIORITY) A, MIN(O.PRIORITY) MN, MAX(O.PRIORITY) MX \
         FROM ORDERS O GROUP BY O.CUSTOMERID" );
      ( "agg-join", "join-aggregation",
        "SELECT C.CUSTOMERID, COUNT(*) N, SUM(O.PRIORITY) S FROM \
         CUSTOMERS C, ORDERS O WHERE C.CUSTOMERID = O.CUSTOMERID \
         GROUP BY C.CUSTOMERID" );
      ( "wide-row", "wide",
        "SELECT C.CUSTOMERNAME, O.ORDERID FROM CUSTOMERS C, ORDERS O, \
         PAYMENTS P WHERE C.CUSTOMERID = O.CUSTOMERID AND \
         P.CUSTID = C.CUSTOMERID AND O.PRIORITY > 1 \
         ORDER BY C.CUSTOMERNAME" ) ]
  in
  let default_size = Aqua_xqeval.Batch.size () in
  let restore () = Aqua_xqeval.Batch.set_size default_size in
  Fun.protect ~finally:restore @@ fun () ->
  Aqua_xqeval.Batch.set_size 1024;
  let result_rows items =
    List.fold_left
      (fun acc item ->
        match item with
        | Aqua_xml.Item.Node (Aqua_xml.Node.Element e)
          when Aqua_xml.Node.local_name e.Aqua_xml.Node.name = "RECORDSET" ->
          acc
          + List.length
              (Aqua_xml.Node.children_elements (Aqua_xml.Node.Element e))
        | _ -> acc + 1)
      0 items
  in
  let cases =
    List.map
      (fun (wname, kind, sql) ->
        let per_scale =
          List.map
            (fun (label, s) ->
              let app = Datagen.application ~seed s in
              let env = Semantic.env_of_application app in
              let t = Translator.translate env sql in
              (* shipping configuration: both engines share one
                 materialized scan cache, so the A/B times FLWOR
                 execution, not scan materialization *)
              let scans = Aqua_dsp.Scan_cache.create app in
              let srv_batched =
                Server.create ~columnar:false ~cache:scans app
              in
              let srv_col = Server.create ~cache:scans app in
              let rows =
                result_rows (Server.execute srv_batched t.Translator.xquery)
              in
              (label, s, t, srv_batched, srv_col, rows))
            scales
        in
        (wname, kind, sql, per_scale))
      workloads
  in
  (* sanity before timing: the columnar engine must serialize
     byte-identically to the row-snapshot batch engine *)
  List.iter
    (fun (wname, _, _, per_scale) ->
      List.iter
        (fun (label, _, t, srv_batched, srv_col, _) ->
          let ser items = Aqua_xml.Serialize.sequence_to_string items in
          let oracle = ser (Server.execute srv_batched t.Translator.xquery) in
          let got = ser (Server.execute srv_col t.Translator.xquery) in
          if got <> oracle then
            failwith
              (Printf.sprintf
                 "P15 %s/%s: columnar disagrees with batched (BENCH_SEED=%d)"
                 wname label seed))
        per_scale)
    cases;
  let iters = if !smoke then 15 else 301 in
  let measured =
    List.map
      (fun (wname, kind, sql, per_scale) ->
        let per_scale =
          List.map
            (fun (label, s, t, srv_batched, srv_col, rows) ->
              (* the interleaved A/B loop itself: each iteration times
                 one batched and one columnar execution back to back *)
              let time srv =
                let t0 = Mclock.now () in
                ignore (Server.execute srv t.Translator.xquery);
                Int64.to_float (Int64.sub (Mclock.now ()) t0)
              in
              for _ = 1 to 5 do
                ignore (time srv_batched);
                ignore (time srv_col)
              done;
              let batched_samples = ref [] and col_samples = ref [] in
              for _ = 1 to iters do
                batched_samples := time srv_batched :: !batched_samples;
                col_samples := time srv_col :: !col_samples
              done;
              let median l =
                List.nth (List.sort compare l) (List.length l / 2)
              in
              let batched_ns = median !batched_samples in
              let col_ns = median !col_samples in
              (label, s, rows, batched_ns, col_ns, ratio batched_ns col_ns))
            per_scale
        in
        (wname, kind, sql, per_scale))
      cases
  in
  List.iter
    (fun (wname, kind, _, per_scale) ->
      print_table
        (Printf.sprintf "P15 %s (%s) at batch size 1024" wname kind)
        (List.concat_map
           (fun (label, (s : Datagen.sizes), _, batched_ns, col_ns, _) ->
             let tag =
               Printf.sprintf "%-6s (%dx%d)" label s.Datagen.customers
                 s.Datagen.orders
             in
             [ (Printf.sprintf "batched  %s" tag, batched_ns);
               (Printf.sprintf "columnar %s" tag, col_ns) ])
           per_scale);
      List.iter
        (fun (label, _, rows, batched_ns, col_ns, speedup) ->
          Printf.printf
            "  %-10s %-6s: %d rows, batched %.1f ns/row, columnar %.1f \
             ns/row, speedup %.2fx\n"
            wname label rows
            (batched_ns /. float_of_int (max 1 rows))
            (col_ns /. float_of_int (max 1 rows))
            speedup)
        per_scale)
    measured;
  (* one instrumented columnar execution at the largest aggregation
     scale: the columnar counter family goes into the JSON record *)
  let telemetry_json, telemetry_label =
    match cases with
    | (_, _, _, per_scale) :: _ -> (
      match List.rev per_scale with
      | (label, _, t, _, srv_col, _) :: _ ->
        Telemetry.reset ();
        Telemetry.set_enabled true;
        ignore (Server.execute srv_col t.Translator.xquery);
        Telemetry.set_enabled false;
        (Telemetry.metrics_to_json (Telemetry.snapshot ()), label)
      | [] -> ("null", "none"))
    | [] -> ("null", "none")
  in
  let jf f = if Float.is_nan f then "null" else Printf.sprintf "%.1f" f in
  let jr f = if Float.is_nan f then "null" else Printf.sprintf "%.2f" f in
  let oc = open_out p15_json_path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"P15 columnar batch layout\",\n  \"units\": \"ns \
     per query execution at batch size 1024; ns_per_row divides by output \
     rows\",\n  \"seed\": %d,\n  \"smoke\": %b,\n  \"batch_size\": 1024,\n  \
     \"workloads\": [\n"
    seed !smoke;
  let n_workloads = List.length measured in
  List.iteri
    (fun wi (wname, kind, sql, per_scale) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"kind\": %S,\n      \"sql\": \"%s\",\n      \
         \"scales\": [\n"
        wname kind
        (String.concat " " (String.split_on_char '\n' (String.escaped sql)));
      let n_scales = List.length per_scale in
      List.iteri
        (fun i
             (label, (s : Datagen.sizes), rows, batched_ns, col_ns, speedup) ->
          let per_row ns = ns /. float_of_int (max 1 rows) in
          Printf.fprintf oc
            "        { \"label\": %S, \"customers\": %d, \"orders\": %d, \
             \"rows\": %d,\n          \"batched_ns\": %s, \
             \"batched_ns_per_row\": %s,\n          \"columnar_ns\": %s, \
             \"columnar_ns_per_row\": %s,\n          \"speedup_at_1024\": \
             %s }%s\n"
            label s.Datagen.customers s.Datagen.orders rows (jf batched_ns)
            (jr (per_row batched_ns))
            (jf col_ns)
            (jr (per_row col_ns))
            (jr speedup)
            (if i = n_scales - 1 then "" else ","))
        per_scale;
      Printf.fprintf oc "      ] }%s\n"
        (if wi = n_workloads - 1 then "" else ","))
    measured;
  Printf.fprintf oc
    "  ],\n  \"telemetry_scale\": \"%s\",\n  \"telemetry\": %s\n}\n"
    telemetry_label telemetry_json;
  close_out oc;
  Printf.printf "wrote %s\n" p15_json_path;
  flush stdout

(* ------------------------------------------------------------------ *)

let () =
  let args =
    List.filter
      (fun a ->
        if a = "--smoke" || String.uppercase_ascii a = "SMOKE" then begin
          smoke := true;
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  if !smoke then
    Printf.printf "(smoke mode: tiny scales, short quota, seed=%d)\n" seed;
  let selected =
    match args with
    | _ :: _ -> List.map String.uppercase_ascii args
    | [] -> [ "P1"; "P1B"; "P2"; "P3"; "P4"; "P5"; "P6"; "P7"; "P8"; "P9"; "P10"; "P11"; "P12"; "P13"; "P14"; "P15" ]
  in
  let all = [ ("P1", p1); ("P1B", p1b); ("P2", p2); ("P3", p3); ("P4", p4); ("P5", p5); ("P6", p6); ("P7", p7); ("P8", p8); ("P9", p9); ("P10", p10); ("P11", p11); ("P12", p12); ("P13", p13); ("P14", p14); ("P15", p15) ] in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None -> Printf.eprintf "unknown experiment %s\n" name)
    selected;
  print_endline "\nbench: done"
