(* Reporting-tool scenario: the workload the paper motivates — a
   legacy SQL reporting tool (think Crystal Reports) running rollups
   against data services it knows only as JDBC tables.

     dune exec examples/reporting.exe

   The "enterprise data" is the synthetic Sales star schema; every
   report below is plain SQL-92 issued through the driver, translated
   to XQuery and executed by the DSP server. *)

module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Rowset = Aqua_relational.Rowset

let report conn ~title sql =
  Printf.printf "==== %s ====\n%s\n\n" title sql;
  let rs = Connection.execute_query conn sql in
  print_endline (Rowset.to_string (Result_set.to_rowset rs));
  print_newline ()

let () =
  let app =
    Aqua_workload.Datagen.application
      { Aqua_workload.Datagen.customers = 30; orders = 120;
        lines_per_order = 3; payments = 80 }
  in
  let conn = Connection.connect app in

  report conn ~title:"Revenue by city"
    "SELECT C.CITY, COUNT(*) ORDERS, SUM(L.QTY * L.PRICE) REVENUE \
     FROM CUSTOMERS C \
     INNER JOIN ORDERS O ON C.CUSTOMERID = O.CUSTOMERID \
     INNER JOIN ORDERLINES L ON O.ORDERID = L.ORDERID \
     WHERE C.CITY IS NOT NULL \
     GROUP BY C.CITY \
     ORDER BY REVENUE DESC";

  report conn ~title:"Order status breakdown"
    "SELECT COALESCE(STATUS, 'UNKNOWN') STATUS, COUNT(*) N \
     FROM ORDERS GROUP BY STATUS ORDER BY N DESC, 1";

  report conn ~title:"Top products by quantity"
    "SELECT PRODUCT, SUM(QTY) UNITS, AVG(PRICE) AVG_PRICE \
     FROM ORDERLINES GROUP BY PRODUCT ORDER BY UNITS DESC";

  report conn ~title:"Customers with orders but no payments"
    "SELECT DISTINCT C.CUSTOMERNAME \
     FROM CUSTOMERS C INNER JOIN ORDERS O ON C.CUSTOMERID = O.CUSTOMERID \
     WHERE NOT EXISTS (SELECT 1 FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID) \
     ORDER BY 1";

  report conn ~title:"Payment coverage per tier"
    "SELECT C.TIER, COUNT(DISTINCT C.CUSTOMERID) CUSTOMERS, SUM(P.PAYMENT) PAID \
     FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID \
     WHERE C.TIER IS NOT NULL \
     GROUP BY C.TIER ORDER BY C.TIER";

  (* EXTRACT in GROUP BY is outside SQL-92's column-only grouping
     rule, so monthly rollups go through a derived table *)
  report conn ~title:"2005 orders per month"
    "SELECT M.MONTH, COUNT(*) N FROM \
     (SELECT EXTRACT(MONTH FROM ORDERDATE) MONTH FROM ORDERS \
      WHERE EXTRACT(YEAR FROM ORDERDATE) = 2005) AS M \
     GROUP BY M.MONTH ORDER BY M.MONTH"
