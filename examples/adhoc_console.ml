(* Ad hoc SQL console over the demo catalog.

     dune exec examples/adhoc_console.exe
     echo "SELECT * FROM CUSTOMERS" | dune exec examples/adhoc_console.exe

   Reads one SQL statement per line (semicolons optional).  Commands:
     \x SQL    show the XQuery translation instead of executing
     \t        toggle the result transport (text <-> xml)
     \d        list tables
     \q        quit *)

module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Rowset = Aqua_relational.Rowset
module Errors = Aqua_translator.Errors

let () =
  let app = Aqua_workload.Demo.build () in
  let conn = Connection.connect app in
  let interactive = Unix.isatty Unix.stdin in
  if interactive then
    print_endline
      "sql2xq ad hoc console — \\d tables, \\x SQL to translate, \\t \
       transport, \\q quit";
  let rec loop () =
    if interactive then (print_string "sql> "; flush stdout);
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      (if line = "" then ()
       else if line = "\\q" then exit 0
       else if line = "\\d" then
         List.iter
           (fun (m : Aqua_dsp.Metadata.table) ->
             Printf.printf "%s.%s\n" m.Aqua_dsp.Metadata.schema
               m.Aqua_dsp.Metadata.table)
           (Connection.Database_metadata.tables conn)
       else if line = "\\t" then begin
         let next =
           match Connection.transport conn with
           | Connection.Text -> Connection.Xml
           | Connection.Xml -> Connection.Text
         in
         Connection.set_transport conn next;
         Printf.printf "transport: %s\n"
           (match next with Connection.Text -> "text" | Connection.Xml -> "xml")
       end
       else
         let translate_only, sql =
           if String.length line > 3 && String.sub line 0 3 = "\\x " then
             (true, String.sub line 3 (String.length line - 3))
           else (false, line)
         in
         try
           if translate_only then
             print_endline
               (Aqua_translator.Translator.to_string (Connection.translate conn sql))
           else begin
             let rs = Connection.execute_query conn sql in
             let rowset = Result_set.to_rowset rs in
             print_endline (Rowset.to_string rowset);
             Printf.printf "(%d rows)\n" (List.length rowset.Rowset.rows)
           end
         with
         | Errors.Error e -> Printf.printf "error: %s\n" (Errors.to_string e)
         | Aqua_xqeval.Error.Dynamic_error m ->
           Printf.printf "dynamic error: %s\n" m);
      loop ()
  in
  loop ()
