(* Deployment scenario: a data-service architect ships .ds / .xsd file
   text (paper Example 2); the operations side deploys it into an
   application, and a SQL tool immediately queries it — including a
   parameterized function exposed as a stored procedure.

     dune exec examples/deployment.exe *)

module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Artifact = Aqua_dsp.Artifact
module Xsd = Aqua_dsp.Xsd
module Dsfile = Aqua_dsp.Dsfile
module Connection = Aqua_driver.Connection
module Callable = Aqua_driver.Callable
module Result_set = Aqua_driver.Result_set

(* the physical source the external function binds to *)
let orders_table () =
  let t =
    Table.create "ORDERS"
      [ Schema.column ~nullable:false "ORDERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMER" (Sql_type.Varchar (Some 30));
        Schema.column ~nullable:false "TOTAL" (Sql_type.Decimal (Some (10, 2)));
        Schema.column "STATUS" (Sql_type.Varchar (Some 10)) ]
  in
  Table.insert_all t
    [ [ Value.Int 1; Value.Str "Acme"; Value.Num 120.5; Value.Str "OPEN" ];
      [ Value.Int 2; Value.Str "Acme"; Value.Num 80.0; Value.Str "SHIPPED" ];
      [ Value.Int 3; Value.Str "Zenith"; Value.Num 42.0; Value.Null ];
      [ Value.Int 4; Value.Str "Supermart"; Value.Num 300.0; Value.Str "OPEN" ] ];
  t

(* what the architect ships: the .xsd row schema... *)
let orders_xsd =
  Xsd.to_text
    {
      Xsd.element_name = "ORDERS";
      target_namespace = "ld:Shipping/ORDERS";
      columns =
        [ Schema.column ~nullable:false "ORDERID" Sql_type.Integer;
          Schema.column ~nullable:false "CUSTOMER" (Sql_type.Varchar (Some 30));
          Schema.column ~nullable:false "TOTAL" (Sql_type.Decimal (Some (10, 2)));
          Schema.column "STATUS" (Sql_type.Varchar (Some 10)) ];
    }

(* ... and the .ds file: one external (physical) function plus a
   parameterized logical view, which Figure 2 maps to a stored
   procedure *)
let orders_ds =
  "import schema namespace t1 = \"ld:Shipping/ORDERS\" at \
   \"ld:Shipping/schemas/ORDERS.xsd\";\n\n\
   declare function f1:ORDERS()\n\
  \    as schema-element(t1:ORDERS)*\n\
  \    external;\n\n\
   declare function f1:ordersOver($p1 as xs:decimal)\n\
  \    as schema-element(t1:ORDERS)* {\n\
   for $o in t1:ORDERS() where $o/TOTAL > $p1 return $o\n\
   };\n"

let () =
  print_endline "-- shipped ORDERS.xsd --";
  print_string orders_xsd;
  print_endline "\n-- shipped ORDERS.ds --";
  print_string orders_ds;

  (* deployment *)
  let app = Artifact.application "ShippingApp" in
  let table = orders_table () in
  ignore
    (Dsfile.deploy app ~path:"Shipping" ~name:"ORDERS"
       ~load_schema:(fun _location -> Xsd.of_text orders_xsd)
       ~bind_external:(fun fn -> if fn = "ORDERS" then Some table else None)
       orders_ds);

  let conn = Connection.connect app in
  print_endline "\n-- SQL over the deployed table --";
  let rs =
    Connection.execute_query conn
      "SELECT CUSTOMER, COUNT(*) N, SUM(TOTAL) T FROM ORDERS GROUP BY \
       CUSTOMER ORDER BY T DESC"
  in
  print_endline
    (Aqua_relational.Rowset.to_string (Result_set.to_rowset rs));

  print_endline "\n-- stored procedure: {call ordersOver(?)} --";
  let stmt = Callable.prepare conn "{call ordersOver(?)}" in
  Callable.set_float stmt 1 100.0;
  let rs = Callable.execute_query stmt in
  while Result_set.next rs do
    Printf.printf "order %d: %s %.2f\n"
      (Option.get (Result_set.get_int rs 1))
      (Option.get (Result_set.get_string rs 2))
      (Option.get (Result_set.get_float rs 3))
  done
