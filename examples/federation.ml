(* Federation scenario (paper Figure 1): two physical sources live in
   different projects; a data service architect authors a LOGICAL data
   service whose XQuery body integrates them; legacy SQL tooling then
   queries the integrated view through the JDBC driver "as is".

     dune exec examples/federation.exe

   The logical view CUSTPAY joins the CRM's CUSTOMERS with the billing
   system's PAYMENTS and exposes one flat row per customer with the
   payment total — the "define additional flat data service functions
   that normalize and expose the desired information" pattern of paper
   section 2.2. *)

module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Artifact = Aqua_dsp.Artifact
module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module X = Aqua_xquery.Ast

let build_app () =
  let app = Artifact.application "FederationApp" in
  (* source 1: the CRM database *)
  let customers =
    Table.create "CUSTOMERS"
      [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERNAME" (Sql_type.Varchar (Some 40)) ]
  in
  Table.insert_all customers
    [ [ Value.Int 1; Value.Str "Acme" ];
      [ Value.Int 2; Value.Str "Supermart" ];
      [ Value.Int 3; Value.Str "Zenith" ] ];
  let crm = Artifact.import_physical_table app ~project:"CRM" customers in
  (* source 2: the billing system *)
  let payments =
    Table.create "PAYMENTS"
      [ Schema.column ~nullable:false "CUSTID" Sql_type.Integer;
        Schema.column ~nullable:false "PAYMENT" (Sql_type.Decimal (Some (10, 2))) ]
  in
  Table.insert_all payments
    [ [ Value.Int 1; Value.Num 250.0 ];
      [ Value.Int 1; Value.Num 75.5 ];
      [ Value.Int 2; Value.Num 1200.0 ] ];
  let billing = Artifact.import_physical_table app ~project:"Billing" payments in

  (* the logical data service: authored XQuery over both sources *)
  let imports =
    [ { X.prefix = "crm";
        namespace = Artifact.namespace_of_service crm;
        location = Artifact.schema_location_of_service crm };
      { X.prefix = "pay";
        namespace = Artifact.namespace_of_service billing;
        location = Artifact.schema_location_of_service billing } ]
  in
  let body =
    (* for $c in crm:CUSTOMERS()
       let $p := pay:PAYMENTS()[CUSTID = $c/CUSTOMERID]
       return <CUSTPAY>
                <CUSTOMERID>..</CUSTOMERID>
                <CUSTOMERNAME>..</CUSTOMERNAME>
                <TOTALPAID>{fn:sum(..)}</TOTALPAID>
              </CUSTPAY> *)
    X.Flwor
      {
        X.clauses =
          [ X.For { var = "c"; source = X.call "crm:CUSTOMERS" [] };
            X.Let
              {
                var = "p";
                value =
                  X.Filter
                    ( X.call "pay:PAYMENTS" [],
                      X.Binop
                        ( X.B_general X.Eq,
                          X.Path
                            ( X.Context_item,
                              [ { X.name = "CUSTID"; predicates = [] } ] ),
                          X.path1 (X.var "c") "CUSTOMERID" ) );
              } ];
        X.return =
          X.elem "CUSTPAY"
            [ X.elem "CUSTOMERID"
                [ X.call "fn:data" [ X.path1 (X.var "c") "CUSTOMERID" ] ];
              X.elem "CUSTOMERNAME"
                [ X.call "fn:data" [ X.path1 (X.var "c") "CUSTOMERNAME" ] ];
              X.elem "TOTALPAID"
                [ X.call "fn:sum" [ X.path1 (X.var "p") "PAYMENT" ] ] ];
      }
  in
  ignore
    (Artifact.add_logical_service app ~project:"Services" ~name:"CUSTPAY"
       [ { Artifact.fn_name = "CUSTPAY";
           params = [];
           element_name = "CUSTPAY";
           columns =
             [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
               Schema.column ~nullable:false "CUSTOMERNAME" (Sql_type.Varchar (Some 40));
               Schema.column ~nullable:false "TOTALPAID" (Sql_type.Decimal (Some (12, 2))) ];
           body = Artifact.Logical { imports; body };
         } ]);
  app

let () =
  let app = build_app () in
  let conn = Connection.connect app in

  print_endline "-- tables visible through the driver (Figure 2 mapping) --";
  List.iter
    (fun (m : Aqua_dsp.Metadata.table) ->
      Printf.printf "  %s.%s.%s\n" m.Aqua_dsp.Metadata.catalog
        m.Aqua_dsp.Metadata.schema m.Aqua_dsp.Metadata.table)
    (Connection.Database_metadata.tables conn);

  (* the reporting tool has no idea CUSTPAY is a federated XQuery view *)
  let sql =
    "SELECT CUSTOMERNAME, TOTALPAID FROM CUSTPAY WHERE TOTALPAID > 100 ORDER \
     BY TOTALPAID DESC"
  in
  Printf.printf "\n-- SQL over the logical view --\n%s\n\n" sql;
  let translated =
    Aqua_translator.Translator.translate
      (Aqua_translator.Semantic.env_of_application app)
      sql
  in
  print_endline "-- its XQuery translation --";
  print_endline (Aqua_translator.Translator.to_string translated);
  print_newline ();

  let rs = Connection.execute_query conn sql in
  print_endline "-- rows --";
  while Result_set.next rs do
    Printf.printf "%-12s %8s\n"
      (Option.get (Result_set.get_string rs 1))
      (match Result_set.get_float rs 2 with
      | Some f -> Printf.sprintf "%.2f" f
      | None -> "NULL")
  done
