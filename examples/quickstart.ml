(* Quickstart: the full pipeline in one page.

     dune exec examples/quickstart.exe

   1. create an application and import a relational table as a
      physical data service (the paper's metadata import, Example 2);
   2. translate a SQL statement to XQuery (section 3) and print it;
   3. execute it through the in-process DSP server;
   4. read the rows back through the JDBC-style driver. *)

module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Artifact = Aqua_dsp.Artifact
module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic

let () =
  (* 1. a CUSTOMERS table exposed as a data service *)
  let customers =
    Table.create "CUSTOMERS"
      [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERNAME" (Sql_type.Varchar (Some 40));
        Schema.column "CITY" (Sql_type.Varchar (Some 30)) ]
  in
  Table.insert_all customers
    [ [ Value.Int 1; Value.Str "Acme Widget Stores"; Value.Str "Austin" ];
      [ Value.Int 2; Value.Str "Supermart"; Value.Str "Boston" ];
      [ Value.Int 3; Value.Str "Zenith Parts"; Value.Null ] ];
  let app = Artifact.application "QuickstartApp" in
  ignore (Artifact.import_physical_table app ~project:"TestDataServices" customers);

  (* 2. SQL in, XQuery out *)
  let sql =
    "SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS WHERE CUSTOMERID \
     > 1 ORDER BY CUSTOMERID DESC"
  in
  let env = Semantic.env_of_application app in
  let translated = Translator.translate env sql in
  print_endline "-- SQL --";
  print_endline sql;
  print_endline "\n-- generated XQuery --";
  print_endline (Translator.to_string translated);

  (* 3. executed by the server *)
  let server = Aqua_dsp.Server.create app in
  let items = Aqua_dsp.Server.execute server translated.Translator.xquery in
  print_endline "\n-- server result (XML) --";
  print_endline (Aqua_xml.Serialize.sequence_to_string ~indent:true items);

  (* 4. or, as an application would: through the driver *)
  print_endline "\n-- via the JDBC-style driver --";
  let conn = Connection.connect app in
  let rs = Connection.execute_query conn sql in
  while Result_set.next rs do
    Printf.printf "id=%d name=%s\n"
      (Option.get (Result_set.get_int rs 1))
      (Option.get (Result_set.get_string rs 2))
  done
