(* Unit and property tests for the XQuery atomic value model. *)

module Atomic = Aqua_xml.Atomic

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lexical_forms () =
  check_str "int" "42" (Atomic.to_lexical (Atomic.Integer 42));
  check_str "neg" "-7" (Atomic.to_lexical (Atomic.Integer (-7)));
  check_str "integral double" "5" (Atomic.to_lexical (Atomic.Double 5.0));
  check_str "decimal" "5.25" (Atomic.to_lexical (Atomic.Decimal 5.25));
  check_str "bool" "true" (Atomic.to_lexical (Atomic.Boolean true));
  check_str "string" "hi" (Atomic.to_lexical (Atomic.String "hi"));
  check_str "date" "2005-03-01"
    (Atomic.to_lexical (Atomic.Date { Atomic.year = 2005; month = 3; day = 1 }));
  check_str "dateTime" "2005-03-01T08:30:00"
    (Atomic.to_lexical
       (Atomic.Timestamp
          {
            Atomic.date = { Atomic.year = 2005; month = 3; day = 1 };
            time = { Atomic.hour = 8; minute = 30; second = 0 };
          }))

let date_parsing () =
  let d = Atomic.date_of_string "2004-12-31" in
  check_int "year" 2004 d.Atomic.year;
  check_int "month" 12 d.Atomic.month;
  check_int "day" 31 d.Atomic.day;
  Alcotest.check_raises "bad separator" (Atomic.Cast_error "invalid xs:date literal \"2004/12/31\"")
    (fun () -> ignore (Atomic.date_of_string "2004/12/31"));
  (match Atomic.date_of_string "2004-13-01" with
  | exception Atomic.Cast_error _ -> ()
  | _ -> Alcotest.fail "month 13 accepted");
  let ts = Atomic.timestamp_of_string "2004-06-15 10:20:30" in
  check_int "hour via space separator" 10 ts.Atomic.time.Atomic.hour

let casts () =
  check_int "string to int" 42 (Atomic.cast_integer (Atomic.String " 42 "));
  check_int "untyped to int" 9 (Atomic.cast_integer (Atomic.Untyped "9"));
  check_bool "string to bool" true (Atomic.cast_boolean (Atomic.String "true"));
  check_bool "1 to bool" true (Atomic.cast_boolean (Atomic.Integer 1));
  Alcotest.(check (float 1e-9)) "int to double" 5.0
    (Atomic.cast_double (Atomic.Integer 5));
  (match Atomic.cast_integer (Atomic.String "zap") with
  | exception Atomic.Cast_error _ -> ()
  | _ -> Alcotest.fail "bad cast accepted");
  (match Atomic.cast_date (Atomic.Integer 3) with
  | exception Atomic.Cast_error _ -> ()
  | _ -> Alcotest.fail "int to date accepted")

let comparisons () =
  let c = Atomic.compare_values in
  check_bool "int eq double" true (c (Atomic.Integer 2) (Atomic.Double 2.0) = 0);
  check_bool "int lt decimal" true (c (Atomic.Integer 2) (Atomic.Decimal 2.5) < 0);
  check_bool "untyped numeric coercion" true
    (c (Atomic.Untyped "10") (Atomic.Integer 9) > 0);
  check_bool "untyped vs untyped is string order" true
    (c (Atomic.Untyped "10") (Atomic.Untyped "9") < 0);
  check_bool "untyped vs string" true
    (c (Atomic.Untyped "abc") (Atomic.String "abd") < 0);
  check_bool "date vs timestamp" true
    (c
       (Atomic.Date { Atomic.year = 2005; month = 1; day = 2 })
       (Atomic.Timestamp
          {
            Atomic.date = { Atomic.year = 2005; month = 1; day = 2 };
            time = { Atomic.hour = 1; minute = 0; second = 0 };
          })
    < 0);
  (match c (Atomic.Integer 1) (Atomic.Date { Atomic.year = 2005; month = 1; day = 1 }) with
  | exception Atomic.Cast_error _ -> ()
  | _ -> Alcotest.fail "int vs date compared")

let equality_and_keys () =
  check_bool "equal across representations" true
    (Atomic.equal (Atomic.Integer 3) (Atomic.Decimal 3.0));
  check_bool "hash keys agree when equal" true
    (Atomic.hash_key (Atomic.Integer 3) = Atomic.hash_key (Atomic.Decimal 3.0));
  check_bool "incomparable unequal" false
    (Atomic.equal (Atomic.Integer 1) (Atomic.Date { Atomic.year = 2005; month = 1; day = 1 }))

(* property: comparison over integers matches OCaml's compare *)
let prop_int_order =
  QCheck.Test.make ~name:"atomic integer order matches int order" ~count:200
    QCheck.(pair int int)
    (fun (a, b) ->
      let c = Atomic.compare_values (Atomic.Integer a) (Atomic.Integer b) in
      compare a b = compare c 0 || (compare a b < 0) = (c < 0))

let prop_hash_key_consistent =
  QCheck.Test.make ~name:"equal values have equal hash keys" ~count:200
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (a, b) ->
      let va = Atomic.Integer a and vb = Atomic.Double (float_of_int b) in
      (not (Atomic.equal va vb)) || Atomic.hash_key va = Atomic.hash_key vb)

let prop_date_roundtrip =
  QCheck.Test.make ~name:"date lexical round-trip" ~count:200
    QCheck.(triple (int_range 1 9999) (int_range 1 12) (int_range 1 28))
    (fun (year, month, day) ->
      let d = { Atomic.year; month; day } in
      Atomic.date_of_string (Atomic.date_to_string d) = d)

let suite =
  ( "atomic",
    [ Helpers.case "lexical forms" lexical_forms;
      Helpers.case "date parsing" date_parsing;
      Helpers.case "casts" casts;
      Helpers.case "comparisons" comparisons;
      Helpers.case "equality and hash keys" equality_and_keys;
      Helpers.qcheck prop_int_order;
      Helpers.qcheck prop_hash_key_consistent;
      Helpers.qcheck prop_date_roundtrip ] )
