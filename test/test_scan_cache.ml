(* Scan materialization, both levels: the optimizer's per-plan
   shared-scan hoist and the cross-query revision-aware scan cache —
   plus the group-key injectivity regression that rode along (the flat
   separator-joined encoding collided on keys containing the
   separator). *)

module X = Aqua_xquery.Ast
module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item
module Optimize = Aqua_xqeval.Optimize
module Eval = Aqua_xqeval.Eval
module Compile = Aqua_xqeval.Compile
module Group_key = Aqua_xqeval.Group_key
module Artifact = Aqua_dsp.Artifact
module Scan_cache = Aqua_dsp.Scan_cache
module Server = Aqua_dsp.Server
module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Rowset = Aqua_relational.Rowset
module Table = Aqua_relational.Table
module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Value = Aqua_relational.Value
module Engine = Aqua_sqlengine.Engine
module Failpoint = Aqua_resilience.Failpoint
module Budget = Aqua_resilience.Budget
module Datagen = Aqua_workload.Datagen
module Querygen = Aqua_workload.Querygen
module Metadata = Aqua_dsp.Metadata

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Optimizer hoist goldens                                            *)

let scan name = X.Call (name, [])

let pair a b = X.Seq [ a; b ]

let hoist_goldens () =
  (* two occurrences of the same data-service scan: hoisted into one
     shared let at the top *)
  let e = pair (scan "ns0:T") (scan "ns0:T") in
  let opt, report = Optimize.expr e in
  check_int "one shared scan" 1 report.Optimize.shared_scans;
  (match opt with
  | X.Flwor
      {
        clauses = [ X.Let { var; value = X.Call ("ns0:T", []) } ];
        return = X.Seq [ X.Var v1; X.Var v2 ];
      } ->
    Alcotest.(check string) "hoisted var" (Optimize.scan_var "ns0:T") var;
    Alcotest.(check string) "first use" var v1;
    Alcotest.(check string) "second use" var v2
  | _ -> Alcotest.fail "expected a wrapping FLWOR with one shared let");
  (* a single occurrence is left alone *)
  let opt, report = Optimize.expr (scan "ns0:T") in
  check_int "single scan not hoisted" 0 report.Optimize.shared_scans;
  (match opt with
  | X.Call ("ns0:T", []) -> ()
  | _ -> Alcotest.fail "single scan must stay in place");
  (* parameterless BUILT-INS are not scans, however often repeated *)
  let e = pair (scan "fn:true") (scan "fn:true") in
  let _, report = Optimize.expr e in
  check_int "builtins never hoisted" 0 report.Optimize.shared_scans;
  (* parameterized calls are not cacheable scans *)
  let c = X.Call ("ns0:F", [ X.Literal (Atomic.Integer 1) ]) in
  let _, report = Optimize.expr (pair c c) in
  check_int "parameterized calls never hoisted" 0 report.Optimize.shared_scans;
  (* the toggle: ~share_scans:false leaves everything in place *)
  let e = pair (scan "ns0:T") (scan "ns0:T") in
  let opt, report = Optimize.expr ~share_scans:false e in
  check_int "toggle off" 0 report.Optimize.shared_scans;
  check_bool "ast unchanged" true (opt = e);
  (* occurrences inside FLWOR clauses are found and substituted *)
  let e =
    X.Flwor
      {
        clauses =
          [
            X.For { var = "a"; source = scan "ns0:T" };
            X.For { var = "b"; source = scan "ns0:T" };
          ];
        return = X.Var "a";
      }
  in
  let opt, report = Optimize.expr e in
  check_int "for-sources shared" 1 report.Optimize.shared_scans;
  (match opt with
  | X.Flwor { clauses = X.Let _ :: _; _ } -> ()
  | _ -> Alcotest.fail "expected the shared let to wrap the plan");
  (* laziness guard: a scan whose every occurrence hides in if-branches
     is never hoisted — eager evaluation could invoke a breaker-open or
     failing service the plan would never have touched *)
  let cond = X.Literal (Atomic.Boolean false) in
  let e = X.If (cond, scan "ns0:T", scan "ns0:T") in
  let opt, report = Optimize.expr e in
  check_int "branch-only scans stay lazy" 0 report.Optimize.shared_scans;
  check_bool "conditional ast unchanged" true (opt = e);
  (* ...but one always-evaluated occurrence anchors the hoist: the plan
     was going to invoke the service anyway, sharing only reduces calls *)
  let e = pair (scan "ns0:T") (X.If (cond, scan "ns0:T", X.Seq [])) in
  let _, report = Optimize.expr e in
  check_int "anchored scan hoisted" 1 report.Optimize.shared_scans;
  (* a lazily-built hash-join side alone is conditional; paired with an
     anchored for-source it shares the anchor's materialization *)
  let e =
    X.Flwor
      {
        clauses =
          [
            X.For { var = "a"; source = scan "ns0:T" };
            X.Hash_join
              {
                var = "b";
                source = scan "ns0:T";
                build_key = X.Var "b";
                probe_key = X.Var "a";
                value_cmp = false;
              };
          ];
        return = X.Var "a";
      }
  in
  let _, report = Optimize.expr e in
  check_int "join build shares the anchored scan" 1
    report.Optimize.shared_scans

(* The hoist must be semantics-preserving on executable queries: a
   self-join through the server returns the same rows with the cache
   on and off, through interpreter and compiler alike. *)
let self_join_semantics () =
  let app = Helpers.demo_app () in
  let sql =
    "SELECT A.CUSTOMERNAME, B.CUSTOMERNAME FROM CUSTOMERS A, CUSTOMERS B \
     WHERE A.CUSTOMERID = B.CUSTOMERID"
  in
  let t = Helpers.translate app sql in
  let run ~scan_cache =
    let srv = Server.create ~scan_cache app in
    Aqua_xml.Serialize.sequence_to_string
      (Server.execute srv t.Aqua_translator.Translator.xquery)
  in
  Alcotest.(check string) "cache on = cache off" (run ~scan_cache:false)
    (run ~scan_cache:true);
  let srv = Server.create app in
  let prepared = Server.prepare srv t.Aqua_translator.Translator.xquery in
  Alcotest.(check string) "compiled agrees" (run ~scan_cache:false)
    (Aqua_xml.Serialize.sequence_to_string (Server.execute_prepared prepared))

(* ------------------------------------------------------------------ *)
(* Cross-query cache behaviour                                        *)

let warm_hits () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  let sql = "SELECT CUSTOMERNAME FROM CUSTOMERS" in
  ignore (Connection.execute_query conn sql);
  let s1 = Scan_cache.stats (Connection.scan_cache conn) in
  check_int "first run misses once" 1 s1.Scan_cache.misses;
  ignore (Connection.execute_query conn sql);
  let s2 = Scan_cache.stats (Connection.scan_cache conn) in
  check_int "second run hits" (s1.Scan_cache.hits + 1) s2.Scan_cache.hits;
  check_int "no new miss" s1.Scan_cache.misses s2.Scan_cache.misses;
  check_bool "entry resident" true (s2.Scan_cache.entries = 1);
  check_bool "bytes accounted" true (s2.Scan_cache.bytes > 0)

let revision_invalidation () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  let sql = "SELECT CUSTOMERNAME FROM CUSTOMERS" in
  ignore (Connection.execute_query conn sql);
  ignore (Connection.execute_query conn sql);
  let before = Scan_cache.stats (Connection.scan_cache conn) in
  check_bool "warm before the bump" true (before.Scan_cache.hits > 0);
  (* a metadata change bumps the application revision: every resident
     scan must be dropped before the next serve *)
  ignore (Artifact.add_logical_service app ~project:"Aux" ~name:"NOOP" []);
  ignore (Connection.execute_query conn sql);
  let after = Scan_cache.stats (Connection.scan_cache conn) in
  check_bool "entries were invalidated, not evicted" true
    (after.Scan_cache.invalidations > before.Scan_cache.invalidations);
  check_int "no capacity evictions" before.Scan_cache.evictions
    after.Scan_cache.evictions;
  check_int "rerun re-fetches (a miss, not a stale hit)"
    (before.Scan_cache.misses + 1) after.Scan_cache.misses;
  check_int "no hit served across the bump" before.Scan_cache.hits
    after.Scan_cache.hits

let direct_revision_flush () =
  let app = Artifact.application "App" in
  let c = Scan_cache.create app in
  Scan_cache.store c "k" [ Item.Atomic (Atomic.Integer 1) ];
  check_bool "hit before bump" true (Scan_cache.find c "k" <> None);
  ignore (Artifact.add_logical_service app ~project:"P" ~name:"S" []);
  check_bool "miss after bump" true (Scan_cache.find c "k" = None);
  let s = Scan_cache.stats c in
  check_int "flushed entry counted as invalidation" 1 s.Scan_cache.invalidations;
  check_int "resident bytes back to zero" 0 s.Scan_cache.bytes

let budget_eviction () =
  let app = Artifact.application "App" in
  let c = Scan_cache.create ~max_entries:2 app in
  let seq n = [ Item.Atomic (Atomic.Integer n) ] in
  Scan_cache.store c "a" (seq 1);
  Scan_cache.store c "b" (seq 2);
  ignore (Scan_cache.find c "a");
  (* "b" is now least-recently used; a third entry evicts it *)
  Scan_cache.store c "c" (seq 3);
  check_bool "lru entry evicted" true (Scan_cache.find c "b" = None);
  check_bool "recent entry kept" true (Scan_cache.find c "a" <> None);
  check_bool "new entry kept" true (Scan_cache.find c "c" <> None);
  check_int "one eviction" 1 (Scan_cache.stats c).Scan_cache.evictions;
  (* byte budget: entries are dropped until resident bytes fit *)
  let big = Scan_cache.create ~max_bytes:200 app in
  let payload tag = [ Item.Atomic (Atomic.String (String.make 80 tag)) ] in
  Scan_cache.store big "x" (payload 'x');
  Scan_cache.store big "y" (payload 'y');
  Scan_cache.store big "z" (payload 'z');
  check_bool "byte budget enforced" true
    ((Scan_cache.stats big).Scan_cache.bytes <= 200);
  check_bool "byte budget evicted" true
    ((Scan_cache.stats big).Scan_cache.evictions > 0);
  (* an oversized result is served but never admitted *)
  let capped = Scan_cache.create ~max_rows:2 app in
  Scan_cache.store capped "wide"
    [ Item.Atomic (Atomic.Integer 1); Item.Atomic (Atomic.Integer 2);
      Item.Atomic (Atomic.Integer 3) ];
  check_int "oversized result not resident" 0
    (Scan_cache.stats capped).Scan_cache.entries

(* A one-table application small enough to reason about exact row and
   budget counts. *)
let tiny_app rows =
  let app = Artifact.application "App" in
  let schema = [ Schema.column ~nullable:false "ID" Sql_type.Integer ] in
  let t = Table.create "T" schema in
  List.iter (fun i -> Table.insert t [ Value.Int i ]) rows;
  ignore (Artifact.import_physical_table app ~project:"P" t);
  (app, t)

let serve_rows srv = Server.call_function srv ~path:"P" ~name:"T" ~fn:"T" []

(* The item governor must charge cached serves exactly like uncached
   ones: a query admitted cold is admitted warm, a query rejected cold
   is rejected warm — the cache changes latency, never admission. *)
let serve_budget_symmetry () =
  let twice ~scan_cache =
    let app, _ = tiny_app [ 1; 2 ] in
    let srv = Server.create ~scan_cache app in
    Budget.with_budget (Budget.limits ~max_items:3 ()) @@ fun () ->
    ignore (serve_rows srv);
    ignore (serve_rows srv)
  in
  (* 2 rows per serve against a 3-item budget: the second serve trips
     the governor whether it re-fetches (cache off) or hits (warm) *)
  (match twice ~scan_cache:false with
  | () -> Alcotest.fail "cold serves must trip the item governor"
  | exception Budget.Exceeded _ -> ());
  (match twice ~scan_cache:true with
  | () -> Alcotest.fail "warm serve must trip the governor identically"
  | exception Budget.Exceeded _ -> ());
  (* and a single serve fits the same budget in both modes *)
  let once ~scan_cache =
    let app, _ = tiny_app [ 1; 2 ] in
    let srv = Server.create ~scan_cache app in
    Budget.with_budget (Budget.limits ~max_items:3 ()) @@ fun () ->
    check_int "served rows" 2 (List.length (serve_rows srv))
  in
  once ~scan_cache:false;
  once ~scan_cache:true

(* Data changes must invalidate result caches: inserting a row bumps
   the table version, which moves the application's data revision, so
   both the scan cache and the baseline engine's table memo re-fetch. *)
let insert_invalidates () =
  let app, table = tiny_app [ 1; 2 ] in
  let sql = "SELECT ID FROM T" in
  let conn = Connection.connect app in
  let count () =
    List.length
      (Result_set.to_rowset (Connection.execute_query conn sql)).Rowset.rows
  in
  check_int "cold read" 2 (count ());
  check_int "warm read" 2 (count ());
  let warm = Scan_cache.stats (Connection.scan_cache conn) in
  check_bool "second read was served warm" true (warm.Scan_cache.hits > 0);
  Table.insert table [ Value.Int 3 ];
  check_int "read after insert sees the new row" 3 (count ());
  let after = Scan_cache.stats (Connection.scan_cache conn) in
  check_bool "insert invalidated resident scans" true
    (after.Scan_cache.invalidations > warm.Scan_cache.invalidations);
  (* the baseline engine's table-resolution memo obeys the same signal *)
  let env = Engine.env_of_application app in
  check_int "engine cold read" 3
    (List.length (Engine.execute_sql env sql).Rowset.rows);
  Table.insert table [ Value.Int 4 ];
  check_int "engine read after insert" 4
    (List.length (Engine.execute_sql env sql).Rowset.rows)

(* The optimized and fallback servers share one cache, but a logical
   function's materialized result depends on which evaluator produced
   it (the whole point of the fallback is to distrust the optimizer),
   so logical entries are keyed per evaluator flavor while physical
   scans — evaluator-independent base data — stay shared. *)
let fallback_logical_independence () =
  let app, _ = tiny_app [ 1; 2 ] in
  let base =
    match Artifact.find_service app ~path:"P" ~name:"T" with
    | Some ds -> ds
    | None -> Alcotest.fail "physical service missing"
  in
  let imports =
    [
      {
        X.prefix = "b";
        namespace = Artifact.namespace_of_service base;
        location = Artifact.schema_location_of_service base;
      };
    ]
  in
  let body =
    X.Flwor
      {
        clauses = [ X.For { var = "r"; source = X.Call ("b:T", []) } ];
        return = X.Var "r";
      }
  in
  ignore
    (Artifact.add_logical_service app ~project:"P" ~name:"V"
       [
         {
           Artifact.fn_name = "V";
           params = [];
           element_name = "T";
           columns = [];
           body = Artifact.Logical { imports; body };
         };
       ]);
  let cache = Scan_cache.create app in
  let opt = Server.create ~cache app in
  let unopt = Server.create ~optimize:false ~cache app in
  let view srv = Server.call_function srv ~path:"P" ~name:"V" ~fn:"V" [] in
  ignore (view opt);
  let s1 = Scan_cache.stats cache in
  ignore (view unopt);
  let s2 = Scan_cache.stats cache in
  (* the fallback rerun recomputes the logical view (a fresh miss) but
     reuses the physical scan it reads from (a hit) *)
  check_int "logical view recomputed per evaluator"
    (s1.Scan_cache.misses + 1) s2.Scan_cache.misses;
  check_int "physical scan reused across evaluators"
    (s1.Scan_cache.hits + 1) s2.Scan_cache.hits;
  (* same evaluator twice: the logical entry itself is warm *)
  ignore (view opt);
  let s3 = Scan_cache.stats cache in
  check_int "same-evaluator serve is a hit" (s2.Scan_cache.hits + 1)
    s3.Scan_cache.hits;
  check_int "no new miss" s2.Scan_cache.misses s3.Scan_cache.misses

let disabled_is_inert () =
  let app = Artifact.application "App" in
  let c = Scan_cache.create ~enabled:false app in
  Scan_cache.store c "k" [ Item.Atomic (Atomic.Integer 1) ];
  check_bool "disabled cache never hits" true (Scan_cache.find c "k" = None);
  let s = Scan_cache.stats c in
  check_int "no entries" 0 s.Scan_cache.entries;
  check_int "no counters" 0 (s.Scan_cache.hits + s.Scan_cache.misses)

(* ------------------------------------------------------------------ *)
(* Fallback reruns reuse the cache                                    *)

let fallback_hits_cache () =
  let app = Helpers.demo_app () in
  let sql =
    "SELECT A.CUSTOMERNAME, B.CUSTOMERNAME FROM CUSTOMERS A, CUSTOMERS B \
     WHERE A.CUSTOMERID = B.CUSTOMERID"
  in
  let oracle = Engine.execute_sql (Engine.env_of_application app) sql in
  (* crash the optimized plan at its first hash-join evaluation; the
     driver degrades to the unoptimized server, which must find the
     scans the crashed run already materialized *)
  Failpoint.arm "xqeval.hashjoin=at(1)";
  Fun.protect ~finally:Failpoint.disarm @@ fun () ->
  let conn = Connection.connect app in
  let rs = Connection.execute_query conn sql in
  (match Rowset.diff_summary oracle (Result_set.to_rowset rs) with
  | None -> ()
  | Some msg -> Alcotest.failf "fallback produced wrong rows: %s" msg);
  let s = Scan_cache.stats (Connection.scan_cache conn) in
  check_int "scan fetched exactly once across crash + rerun" 1
    s.Scan_cache.misses;
  check_bool "fallback rerun served from the cache" true (s.Scan_cache.hits > 0)

(* ------------------------------------------------------------------ *)
(* Differential: cache on vs off vs baseline engine                   *)

let differential_fixed () =
  let app = Helpers.demo_app () in
  List.iter
    (fun sql ->
      (* default connect has the cache on; helpers diff it against the
         baseline engine *)
      Helpers.assert_differential app sql;
      (* and cache-on vs cache-off through the driver must agree *)
      let rows cache =
        let conn = Connection.connect ~scan_cache:cache app in
        ignore (Connection.execute_query conn sql);
        (* second run hits the cache when enabled *)
        Result_set.to_rowset (Connection.execute_query conn sql)
      in
      match Rowset.diff_summary (rows false) (rows true) with
      | None -> ()
      | Some msg -> Alcotest.failf "cache divergence on %s: %s" sql msg)
    [
      "SELECT A.CUSTOMERNAME, B.CUSTOMERNAME FROM CUSTOMERS A, CUSTOMERS B \
       WHERE A.CUSTOMERID = B.CUSTOMERID";
      "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN \
       (SELECT CUSTOMERID FROM PO_CUSTOMERS)";
      "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P \
       WHERE C.CUSTOMERID = P.CUSTID AND P.PAYMENT > 100";
      "SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY";
    ]

let differential_random =
  QCheck.Test.make ~count:60 ~name:"scan cache differential (random SQL)"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let app =
        Datagen.application
          { Datagen.customers = 10; orders = 18; lines_per_order = 2;
            payments = 12 }
      in
      let tables = Metadata.list_tables app in
      let st = Random.State.make [| seed |] in
      let sql =
        Querygen.generate_sql ~profile:Querygen.reporting_profile st tables
      in
      let run cache =
        let conn = Connection.connect ~scan_cache:cache app in
        ignore (Connection.execute_query conn sql);
        Result_set.to_rowset (Connection.execute_query conn sql)
      in
      match (run true, run false) with
      | on, off -> (
        match Rowset.diff_summary off on with
        | None -> true
        | Some msg -> QCheck.Test.fail_reportf "divergence on %s: %s" sql msg)
      | exception Aqua_resilience.Sqlstate.Error _ ->
        (* generator can produce statements the engine rejects; both
           sides raising identically is covered by the main
           differential suite *)
        true)

(* ------------------------------------------------------------------ *)
(* Group-key injectivity (regression: flat "\x01" concat collided)    *)

let composite_of_strings parts =
  Group_key.composite
    (List.map (fun s -> [ Item.Atomic (Atomic.String s) ]) parts)

let group_key_collision () =
  (* under the old encoding ("\x01"-joined hash keys) these two
     distinct key tuples produced the same string:
       "s" ^ "x\x01sy" ^ "\x01" ^ "s" ^ "z"
     = "s" ^ "x"       ^ "\x01" ^ "s" ^ "y\x01sz"  *)
  let a = composite_of_strings [ "x\x01sy"; "z" ] in
  let b = composite_of_strings [ "x"; "y\x01sz" ] in
  check_bool "separator bytes cannot collide" false (a = b);
  (* empty sequence, empty string and the literal "e" are all distinct *)
  let empty_seq = Group_key.composite [ [] ] in
  let empty_str = composite_of_strings [ "" ] in
  let lit_e = composite_of_strings [ "e" ] in
  check_bool "() vs ''" false (empty_seq = empty_str);
  check_bool "() vs 'e'" false (empty_seq = lit_e);
  (* arity is part of the key *)
  check_bool "('a','b') vs ('a;b')" false
    (composite_of_strings [ "a"; "b" ] = composite_of_strings [ "a;b" ])

(* End to end: a group-by whose keys contain the old separator must
   keep the two rows in different groups, in both evaluators. *)
let group_by_adversarial_keys () =
  let row a b =
    X.Elem
      {
        name = "r";
        content =
          [
            X.Elem { name = "a"; content = [ X.Text a ] };
            X.Elem { name = "b"; content = [ X.Text b ] };
          ];
      }
  in
  let step n = { X.name = n; predicates = [] } in
  let e =
    X.Flwor
      {
        clauses =
          [
            X.For
              { var = "p"; source = X.Seq [ row "x\x01sy" "z"; row "x" "y\x01sz" ] };
            X.Group
              {
                grouped = "p";
                partition = "g";
                keys =
                  [
                    (X.Path (X.Var "p", [ step "a" ]), "ka");
                    (X.Path (X.Var "p", [ step "b" ]), "kb");
                  ];
              };
          ];
        return = X.Call ("fn:count", [ X.Var "g" ]);
      }
  in
  let groups_via f = List.length (f e) in
  let ctx = Eval.context () in
  check_int "interpreter (optimized)" 2 (groups_via (Eval.eval ctx));
  check_int "interpreter (naive)" 2 (groups_via (Eval.eval ~optimize:false ctx));
  check_int "compiler" 2
    (List.length (Compile.run (Compile.compile_expr e)));
  check_int "compiler (naive)" 2
    (List.length (Compile.run (Compile.compile_expr ~optimize:false e)))

let group_key_injective_random =
  QCheck.Test.make ~count:300 ~name:"group key encoding is injective"
    QCheck.(
      pair
        (small_list (small_list (string_gen_of_size Gen.(int_bound 6) Gen.(map Char.chr (int_range 0 127)))))
        (small_list (small_list (string_gen_of_size Gen.(int_bound 6) Gen.(map Char.chr (int_range 0 127))))))
    (fun (a, b) ->
      let lift tuple =
        List.map
          (fun atoms -> List.map (fun s -> Item.Atomic (Atomic.String s)) atoms)
          tuple
      in
      a = b
      || Group_key.composite (lift a) <> Group_key.composite (lift b))

let suite =
  ( "scan_cache",
    [
      Helpers.case "optimizer hoist goldens" hoist_goldens;
      Helpers.case "self-join semantics preserved" self_join_semantics;
      Helpers.case "warm run hits the cache" warm_hits;
      Helpers.case "revision bump invalidates" revision_invalidation;
      Helpers.case "direct revision flush" direct_revision_flush;
      Helpers.case "entry and byte budgets evict LRU" budget_eviction;
      Helpers.case "budget charges warm and cold alike" serve_budget_symmetry;
      Helpers.case "insert invalidates result caches" insert_invalidates;
      Helpers.case "fallback keyed per evaluator" fallback_logical_independence;
      Helpers.case "disabled cache is inert" disabled_is_inert;
      Helpers.case "fallback rerun hits the cache" fallback_hits_cache;
      Helpers.case "differential: fixed queries" differential_fixed;
      Helpers.qcheck differential_random;
      Helpers.case "group-key collision regression" group_key_collision;
      Helpers.case "group-by with adversarial keys" group_by_adversarial_keys;
      Helpers.qcheck group_key_injective_random;
    ] )
