(* Golden tests reproducing the paper's worked examples (section 3.5
   and Figures 5-7).  The fixture mirrors the paper's schema:
   CUSTOMERS(CUSTOMERID, CUSTOMERNAME), PAYMENTS(CUSTID, PAYMENT),
   PO_CUSTOMERS(ORDERID, CUSTOMERID) in project TestDataServices.

   We assert the structural shape of each translation (the paper's
   output modulo whitespace and exact variable numbering) and that the
   translated query executes to the rows the SQL means. *)

module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Artifact = Aqua_dsp.Artifact

let paper_app () =
  let app = Artifact.application "PaperApp" in
  let project = "TestDataServices" in
  let customers =
    Table.create "CUSTOMERS"
      [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERNAME" (Sql_type.Varchar (Some 40)) ]
  in
  Table.insert_all customers
    [ [ Value.Int 55; Value.Str "Joe" ];
      [ Value.Int 23; Value.Str "Sue" ];
      [ Value.Int 7; Value.Str "Ann" ] ];
  let payments =
    Table.create "PAYMENTS"
      [ Schema.column ~nullable:false "CUSTID" Sql_type.Integer;
        Schema.column ~nullable:false "PAYMENT" (Sql_type.Decimal (Some (10, 2))) ]
  in
  Table.insert_all payments
    [ [ Value.Int 55; Value.Num 10.0 ];
      [ Value.Int 55; Value.Num 20.0 ];
      [ Value.Int 23; Value.Num 5.5 ] ];
  let po =
    Table.create "PO_CUSTOMERS"
      [ Schema.column ~nullable:false "ORDERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer ]
  in
  Table.insert_all po
    [ [ Value.Int 1; Value.Int 55 ];
      [ Value.Int 2; Value.Int 55 ];
      [ Value.Int 3; Value.Int 23 ] ];
  ignore (Artifact.import_physical_table app ~project customers);
  ignore (Artifact.import_physical_table app ~project payments);
  ignore (Artifact.import_physical_table app ~project po);
  app

let check = Helpers.assert_contains

(* Example 3: a typical XQuery over the CUSTOMERS() function. *)
let example_3_where_eq () =
  let app = paper_app () in
  let text =
    Helpers.xquery_text app
      "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME = 'Sue'"
  in
  check ~needle:"ns0:CUSTOMERS()" text;
  check ~needle:"CUSTOMERNAME = xs:string(\"Sue\")" text;
  Helpers.check_rows "rows" [ [ "23"; "Sue" ] ]
    (Helpers.driver_rows app
       "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME = 'Sue'")

(* Examples 5/6 and Figures 5-7: SELECT * FROM CUSTOMERS. *)
let example_5_6_star () =
  let app = paper_app () in
  let text = Helpers.xquery_text app "SELECT * FROM CUSTOMERS" in
  check ~needle:"import schema namespace ns0 = \"ld:TestDataServices/CUSTOMERS\" at \"ld:TestDataServices/schemas/CUSTOMERS.xsd\";" text;
  check ~needle:"<RECORDSET>" text;
  check ~needle:"for $var1FR0 in ns0:CUSTOMERS()" text;
  check ~needle:"<CUSTOMERS.CUSTOMERID>" text;
  check ~needle:"{fn:data($var1FR0/CUSTOMERID)}" text;
  check ~needle:"<CUSTOMERS.CUSTOMERNAME>" text;
  Helpers.assert_differential app "SELECT * FROM CUSTOMERS"

(* Example 4: aliased single column. *)
let example_4_alias () =
  let app = paper_app () in
  let text = Helpers.xquery_text app "SELECT CUSTOMERID ID FROM CUSTOMERS" in
  check ~needle:"<ID>" text;
  check ~needle:"{fn:data($var1FR0/CUSTOMERID)}" text

(* Examples 7/8: derived table becomes a let-bound RECORDSET. *)
let example_7_8_subquery () =
  let app = paper_app () in
  let sql =
    "SELECT INFO.ID, INFO.NAME FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME \
     FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10"
  in
  let text = Helpers.xquery_text app sql in
  check ~needle:"let $tempvar" text;
  check ~needle:"<RECORDSET>" text;
  check ~needle:"/RECORD" text;
  check ~needle:"<ID>" text;
  check ~needle:"<NAME>" text;
  check ~needle:"> xs:int(10)" text;
  check ~needle:"<INFO.ID>" text;
  check ~needle:"<INFO.NAME>" text;
  Helpers.check_rows "rows"
    [ [ "55"; "Joe" ]; [ "23"; "Sue" ] ]
    (Helpers.driver_rows app (sql ^ " ORDER BY INFO.ID DESC"))

(* Examples 9/10: left outer join via if (fn:empty(...)). *)
let example_9_10_left_outer () =
  let app = paper_app () in
  let sql =
    "SELECT CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT FROM CUSTOMERS LEFT OUTER \
     JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"
  in
  let text = Helpers.xquery_text app sql in
  check ~needle:"import schema namespace ns1 = \"ld:TestDataServices/PAYMENTS\"" text;
  check ~needle:"let $tempvar" text;
  check ~needle:"fn:empty" text;
  check ~needle:"<CUSTOMERS.CUSTOMERID>" text;
  check ~needle:"<PAYMENTS.PAYMENT>" text;
  Helpers.assert_differential app sql;
  (* Ann (customer 7) must appear with a NULL payment *)
  let rows = Helpers.driver_rows app (sql ^ " ORDER BY 1, 2") in
  Helpers.check_rows "null-extended row"
    [ [ "7"; "NULL" ]; [ "23"; "5.5" ]; [ "55"; "10" ]; [ "55"; "20" ] ]
    rows

(* Examples 11/12: join + group-by + aggregates + order-by. *)
let example_11_12_complex () =
  let app = paper_app () in
  let sql =
    "SELECT CUSTOMERS.CUSTOMERNAME, COUNT(PO_CUSTOMERS.ORDERID) N FROM \
     CUSTOMERS, PO_CUSTOMERS WHERE CUSTOMERS.CUSTOMERID = \
     PO_CUSTOMERS.CUSTOMERID GROUP BY CUSTOMERS.CUSTOMERID, \
     CUSTOMERS.CUSTOMERNAME ORDER BY N DESC"
  in
  let text = Helpers.xquery_text app sql in
  (* the double-for inner join *)
  check ~needle:"for $var1FR0 in ns0:CUSTOMERS()" text;
  check ~needle:"for $var1FR1 in ns1:PO_CUSTOMERS()" text;
  (* materialized intermediate and BEA group-by *)
  check ~needle:"let $tempvar" text;
  check ~needle:"group $" text;
  check ~needle:"Partition" text;
  check ~needle:"fn:count($" text;
  Helpers.check_rows "rows"
    [ [ "Joe"; "2" ]; [ "Sue"; "1" ] ]
    (Helpers.driver_rows app sql)

(* Section 4: the text-encoded result wrapper. *)
let section_4_wrapper () =
  let app = paper_app () in
  let t = Helpers.translate app "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS" in
  let wrapped = Aqua_translator.Translator.for_text_transport t in
  let text = Aqua_xquery.Pretty.query_to_string wrapped in
  check ~needle:"fn:string-join" text;
  check ~needle:"let $actualQuery :=" text;
  check ~needle:"for $tokenQuery in $actualQuery/RECORD" text;
  check ~needle:"fn-bea:if-empty" text;
  check ~needle:"fn-bea:xml-escape" text;
  check ~needle:"fn-bea:serialize-atomic" text;
  let srv = Aqua_dsp.Server.create app in
  let wire = Aqua_dsp.Server.execute_to_text srv wrapped in
  (* paper-style encoding: >id<name per row *)
  check ~needle:">55<Joe" wire;
  check ~needle:">23<Sue" wire

let suite =
  ( "golden-paper",
    [ Helpers.case "example 3 (where eq)" example_3_where_eq;
      Helpers.case "examples 5-6 / figures 5-7 (select star)" example_5_6_star;
      Helpers.case "example 4 (alias)" example_4_alias;
      Helpers.case "examples 7-8 (subquery)" example_7_8_subquery;
      Helpers.case "examples 9-10 (left outer join)" example_9_10_left_outer;
      Helpers.case "examples 11-12 (group-by)" example_11_12_complex;
      Helpers.case "section 4 (text wrapper)" section_4_wrapper ] )
