let () =
  Alcotest.run "aqualogic_sql2xq"
    [ Test_atomic.suite;
      Test_xml.suite;
      Test_relational.suite;
      Test_sql_parser.suite;
      Test_xqeval.suite;
      Test_xquery_parser.suite;
      Test_dsp.suite;
      Test_translator.suite;
      Test_golden_paper.suite;
      Test_wrapper.suite;
      Test_engine.suite;
      Test_driver.suite;
      Test_callable.suite;
      Test_dsfile.suite;
      Test_compile.suite;
      Test_differential.suite;
      Test_optimize.suite;
      Test_telemetry.suite;
      Test_obs.suite;
      Test_resilience.suite;
      Test_scan_cache.suite;
      Test_vectorize.suite;
      Test_columnar.suite;
      Test_concurrency.suite;
      Test_net.suite ]
