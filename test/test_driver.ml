(* JDBC-style driver: connection, result sets, prepared statements,
   database metadata. *)

module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Value = Aqua_relational.Value
module Metadata = Aqua_dsp.Metadata

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let conn ?transport () = Connection.connect ?transport (Helpers.demo_app ())

let cursor_api () =
  let c = conn () in
  let rs =
    Connection.execute_query c
      "SELECT CUSTOMERID, CUSTOMERNAME, CITY FROM CUSTOMERS ORDER BY CUSTOMERID"
  in
  check_int "column count" 3 (Result_set.column_count rs);
  check_str "label 1" "CUSTOMERID" (Result_set.column_label rs 1);
  check_str "label 3" "CITY" (Result_set.column_label rs 3);
  check_bool "first row" true (Result_set.next rs);
  check_bool "id" true (Result_set.get_int rs 1 = Some 1);
  check_bool "name" true (Result_set.get_string rs 2 = Some "Acme Widget Stores");
  check_bool "by label" true
    (Result_set.get_value_by_label rs "CITY" = Value.Str "Austin");
  check_bool "was_null false" false (Result_set.was_null rs);
  (* advance to customer 4, whose CITY is NULL *)
  check_bool "rows 2-4" true
    (Result_set.next rs && Result_set.next rs && Result_set.next rs);
  check_bool "null city" true (Result_set.get_string rs 3 = None);
  check_bool "was_null true" true (Result_set.was_null rs);
  check_bool "rows 5-6" true (Result_set.next rs && Result_set.next rs);
  check_bool "exhausted" false (Result_set.next rs);
  (* reading without a row *)
  match Result_set.get_value rs 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "read past the last row"

let transports_equal () =
  let sql =
    "SELECT CUSTOMERNAME, TIER, CREDIT FROM CUSTOMERS ORDER BY CUSTOMERID"
  in
  ignore sql;
  let sql = "SELECT CUSTOMERNAME, TIER FROM CUSTOMERS ORDER BY CUSTOMERID" in
  let via_text = Helpers.driver_rows ~transport:Connection.Text (Helpers.demo_app ()) sql in
  let via_xml = Helpers.driver_rows ~transport:Connection.Xml (Helpers.demo_app ()) sql in
  Helpers.check_rows "transports" via_xml via_text

let switching_transport () =
  let c = conn ~transport:Connection.Xml () in
  check_bool "initial" true (Connection.transport c = Connection.Xml);
  Connection.set_transport c Connection.Text;
  check_bool "switched" true (Connection.transport c = Connection.Text);
  ignore (Connection.execute_query c "SELECT * FROM CUSTOMERS")

let prepared_statements () =
  let c = conn () in
  let stmt =
    Connection.Prepared.prepare c
      "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ? OR TIER = ?"
  in
  check_int "parameter count" 2 (Connection.Prepared.parameter_count stmt);
  (* unbound execution fails *)
  (match Connection.Prepared.execute_query stmt with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbound parameters accepted");
  Connection.Prepared.set_int stmt 1 2;
  Connection.Prepared.set_int stmt 2 3;
  let rs = Connection.Prepared.execute_query stmt in
  let rows = Result_set.to_rowset rs in
  check_int "supermart + zenith" 2 (List.length rows.Aqua_relational.Rowset.rows);
  (* rebinding and re-executing *)
  Connection.Prepared.set_int stmt 1 1;
  Connection.Prepared.set_int stmt 2 99;
  let rs2 = Connection.Prepared.execute_query stmt in
  check_int "only acme" 1
    (List.length (Result_set.to_rowset rs2).Aqua_relational.Rowset.rows);
  (* null parameter *)
  Connection.Prepared.clear_parameters stmt;
  Connection.Prepared.set_null stmt 1;
  Connection.Prepared.set_null stmt 2;
  let rs3 = Connection.Prepared.execute_query stmt in
  check_int "null params match nothing" 0
    (List.length (Result_set.to_rowset rs3).Aqua_relational.Rowset.rows);
  (* out of range *)
  match Connection.Prepared.set_int stmt 3 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad parameter index accepted"

let string_parameters () =
  let c = conn () in
  let stmt =
    Connection.Prepared.prepare c
      "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERNAME = ?"
  in
  Connection.Prepared.set_string stmt 1 "Sue";
  let rows = Result_set.to_rowset (Connection.Prepared.execute_query stmt) in
  check_int "one sue" 1 (List.length rows.Aqua_relational.Rowset.rows)

let database_metadata () =
  let c = conn () in
  check_str "catalog" "DemoApp" (Connection.Database_metadata.catalog c);
  Alcotest.(check (list string)) "schemas (Figure 2)"
    [ "TestDataServices/CUSTOMERS";
      "TestDataServices/PAYMENTS";
      "TestDataServices/PO_CUSTOMERS" ]
    (Connection.Database_metadata.schemas c);
  check_int "tables" 3 (List.length (Connection.Database_metadata.tables c));
  (match Connection.Database_metadata.columns c ~table:"CUSTOMERS" with
  | Some cols -> check_int "customer columns" 4 (List.length cols)
  | None -> Alcotest.fail "no columns");
  check_bool "unknown table" true
    (Connection.Database_metadata.columns c ~table:"NOPE" = None)

let metadata_cache_counts () =
  let c = conn () in
  let cache = Connection.metadata_cache c in
  ignore (Connection.execute_query c "SELECT * FROM CUSTOMERS");
  ignore (Connection.execute_query c "SELECT * FROM CUSTOMERS");
  check_bool "cache hits recorded" true (Metadata.Cache.hits cache > 0)

let qualified_table_names () =
  let rows =
    Helpers.driver_rows (Helpers.demo_app ())
      "SELECT CUSTOMERID FROM \"TestDataServices/CUSTOMERS\".CUSTOMERS WHERE CUSTOMERID = 1"
  in
  Helpers.check_rows "schema-qualified" [ [ "1" ] ] rows

let odd_identifiers_pipeline () =
  (* mixed-case table, a column whose name needs XML sanitization, and
     quoted references all the way through translate/execute/decode *)
  let module Table = Aqua_relational.Table in
  let module Schema = Aqua_relational.Schema in
  let module Sql_type = Aqua_relational.Sql_type in
  let t =
    Table.create "Mixed_Case"
      [ Schema.column ~nullable:false "Plain" Sql_type.Integer;
        Schema.column "With Space" (Sql_type.Varchar None) ]
  in
  Table.insert t [ Value.Int 1; Value.Str "a b" ];
  Table.insert t [ Value.Int 2; Value.Null ];
  let app = Aqua_dsp.Artifact.application "OddApp" in
  ignore (Aqua_dsp.Artifact.import_physical_table app ~project:"P" t);
  List.iter
    (fun transport ->
      let rows =
        Helpers.driver_rows ~transport app
          "SELECT \"With Space\", PLAIN FROM mixed_case ORDER BY plain"
      in
      Helpers.check_rows "odd identifiers" [ [ "a b"; "1" ]; [ "NULL"; "2" ] ]
        rows)
    [ Connection.Text; Connection.Xml ]

let translation_is_deterministic () =
  let app = Helpers.demo_app () in
  let env = Aqua_translator.Semantic.env_of_application app in
  let sql =
    "SELECT C.CITY, COUNT(*) N FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P \
     ON C.CUSTOMERID = P.CUSTID GROUP BY C.CITY ORDER BY N DESC"
  in
  let once =
    Aqua_translator.Translator.to_string
      (Aqua_translator.Translator.translate env sql)
  in
  let twice =
    Aqua_translator.Translator.to_string
      (Aqua_translator.Translator.translate env sql)
  in
  check_str "same text every time" once twice

let suite =
  ( "driver",
    [ Helpers.case "cursor api" cursor_api;
      Helpers.case "transports equal" transports_equal;
      Helpers.case "transport switching" switching_transport;
      Helpers.case "prepared statements" prepared_statements;
      Helpers.case "string parameters" string_parameters;
      Helpers.case "database metadata" database_metadata;
      Helpers.case "metadata cache" metadata_cache_counts;
      Helpers.case "qualified table names" qualified_table_names;
      Helpers.case "odd identifiers through the pipeline" odd_identifiers_pipeline;
      Helpers.case "translation is deterministic" translation_is_deterministic ] )
