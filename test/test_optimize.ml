(* The FLWOR optimizer (predicate pushdown, hash equi-joins, streaming
   clause pipeline) must be semantics-preserving: optimized evaluation
   is byte-identical to the naive nested-loop pipeline, on everything
   the translator emits and on adversarial hand-written FLWORs.  The
   unoptimized path stays available as the differential oracle. *)

module X = Aqua_xquery.Ast
module Optimize = Aqua_xqeval.Optimize
module Eval = Aqua_xqeval.Eval
module Compile = Aqua_xqeval.Compile
module Error = Aqua_xqeval.Error
module Serialize = Aqua_xml.Serialize
module Server = Aqua_dsp.Server
module Connection = Aqua_driver.Connection
module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic

let check_int = Alcotest.(check int)

let parse = Aqua_xquery.Parser.parse_expr

(* Evaluate [src] four ways — interpreter and compiler, each with and
   without the optimizer — and require byte-identical serialization. *)
let quad_check ?(bindings = []) src =
  let expr = parse src in
  let ctx =
    List.fold_left
      (fun ctx (n, v) -> Eval.bind ctx n v)
      (Eval.context ()) bindings
  in
  let vars = List.map fst bindings in
  let ser items = Serialize.sequence_to_string items in
  let naive = ser (Eval.eval ~optimize:false ctx expr) in
  let opt = ser (Eval.eval ctx expr) in
  let cnaive =
    ser (Compile.run ~bindings (Compile.compile_expr ~optimize:false ~vars expr))
  in
  let copt = ser (Compile.run ~bindings (Compile.compile_expr ~vars expr)) in
  if naive <> opt then
    Alcotest.failf "interpreter: optimizer changed the result of %s\n-- naive: %s\n-- optimized: %s"
      src naive opt;
  if naive <> cnaive then
    Alcotest.failf "compiler (naive) disagrees with interpreter on %s\n-- interp: %s\n-- compiled: %s"
      src naive cnaive;
  if naive <> copt then
    Alcotest.failf "compiler (optimized) disagrees on %s\n-- interp: %s\n-- compiled: %s"
      src naive copt

let hand_written_flwors () =
  List.iter quad_check
    [ (* plain equi-join, general comparison, with duplicates on both
         sides — emission order must match the nested loop *)
      "for $a in (1, 2, 3, 2) for $b in (2, 3, 4, 2) where $a = $b \
       return ($a * 10) + $b";
      (* value comparison (singletons) *)
      "for $a in (1, 2, 3) for $b in (2, 3) where $a eq $b return $a";
      (* multi-conjunct where: join conjunct + pushable + residual *)
      "for $a in (1, 2, 3) for $b in (2, 3, 4) where $a = $b and $b > 2 \
       and $a < 10 return ($a, $b)";
      (* untyped build side: element content casts to double under a
         general comparison, so <v>5.0</v> matches the integer 5 *)
      "for $x in (<v>5</v>, <v>5.0</v>, <v>7</v>) for $y in (5, 6) \
       where $x = $y return $y";
      (* untyped vs untyped compares as strings: "5" and "5.0" do
         NOT match even though both cast to the number 5 *)
      "for $x in (<v>5</v>) for $y in (<v>5.0</v>) where $x = $y return 1";
      "for $x in (<v>5</v>, <v>a</v>) for $y in (<v>5</v>, <v>b</v>) \
       where $x = $y return 1";
      (* empty build side / empty probe side *)
      "for $a in (1, 2) for $b in () where $a = $b return $a";
      "for $a in () for $b in (1, 2) where $a = $b return $a";
      (* empty probe key under a value comparison: no match, no error *)
      "for $a in (1, 2) let $e := () for $b in (1, 2) where $e eq $b \
       return $a";
      (* let-bound probe key between the two fors *)
      "for $a in (1, 2, 3) let $k := $a * 2 for $b in (2, 4, 6) \
       where $k = $b return $b";
      (* correlated inner source: no hash join possible, still agrees *)
      "for $a in (1, 2, 3) for $b in ($a, 2) where $a = $b return $b";
      (* barriers downstream of the join *)
      "for $a in (3, 1, 2) for $b in (2, 3) where $a = $b \
       order by $a descending return $a";
      "for $a in (1, 2, 2, 3) for $b in (2, 3, 3) where $a = $b \
       group $a as $p by $a as $k return fn:count($p)";
      (* pushdown across an order-by (not a barrier) *)
      "for $a in (3, 1, 2) order by $a return (for $b in (1, 2) \
       where $a = $b return ($a, $b))";
      (* legal shadowing: inner flwor rebinds $x after the where *)
      "for $x in (1, 2) where $x = 1 return (for $x in (5, 6) return $x)" ]

let accepted_cast_divergence () =
  (* documented divergence (see lib/xqeval/join_table.ml): the nested
     loop raises Cast_error when a general comparison meets a pair it
     cannot cast ("hello" = 5); the hash join treats such pairs as
     non-matching.  The translator always casts both join sides, so
     translated SQL never reaches this corner — pin the behaviour of
     both paths so a change is deliberate. *)
  let expr =
    parse
      "for $x in (<v>5</v>, <v>hello</v>) for $y in (5, 6) \
       where $x = $y return $y"
  in
  (match Eval.eval ~optimize:false (Eval.context ()) expr with
  | _ -> Alcotest.fail "nested loop was expected to raise Cast_error"
  | exception Aqua_xml.Atomic.Cast_error _ -> ());
  match Eval.eval (Eval.context ()) expr with
  | [ Aqua_xml.Item.Atomic a ] when Aqua_xml.Atomic.to_lexical a = "5" -> ()
  | seq ->
    Alcotest.failf "hash join: expected (5), got %s"
      (Serialize.sequence_to_string seq)

let report_counts () =
  let counts src =
    let _, r = Optimize.expr (parse src) in
    (r.Optimize.pushed_predicates, r.Optimize.hash_joins)
  in
  (* recognized equi-join *)
  let p, h = counts "for $a in (1, 2) for $b in (2, 3) where $a = $b return $a" in
  check_int "join: pushed" 0 p;
  check_int "join: hash joins" 1 h;
  (* constant comparand is not a join key; the $a conjunct is pushed
     above the second for *)
  let p, h = counts
      "for $a in (1, 2) for $b in (3, 4) where $a = 1 and $b = 3 return 1"
  in
  check_int "const: pushed" 1 p;
  check_int "const: hash joins" 0 h;
  (* correlated source blocks the rewrite *)
  let _, h = counts "for $a in (1, 2) for $b in ($a, 2) where $a = $b return 1" in
  check_int "correlated: hash joins" 0 h;
  (* value comparison is also recognized *)
  let _, h = counts "for $a in (1, 2) for $b in (2, 3) where $a eq $b return 1" in
  check_int "value cmp: hash joins" 1 h;
  (* the rewritten clause really is a Hash_join node *)
  let optimized, _ =
    Optimize.expr (parse "for $a in (1, 2) for $b in (2, 3) where $a = $b return $a")
  in
  let found = ref false in
  (match optimized with
  | X.Flwor { clauses; _ } ->
    List.iter (function X.Hash_join _ -> found := true | _ -> ()) clauses
  | _ -> ());
  Alcotest.(check bool) "Hash_join clause present" true !found

let where_before_binding_fails () =
  let src = "for $x in (1, 2) where $y = 1 for $y in (3, 4) return $x" in
  let expr = parse src in
  (match Eval.eval (Eval.context ()) expr with
  | _ -> Alcotest.fail "interpreter accepted a where before its binding"
  | exception Error.Dynamic_error msg ->
    Helpers.assert_contains ~needle:"$y" msg;
    Helpers.assert_contains ~needle:"before it is bound" msg);
  (match Compile.compile_expr expr with
  | _ -> Alcotest.fail "compiler accepted a where before its binding"
  | exception Compile.Compile_error msg ->
    Helpers.assert_contains ~needle:"$y" msg);
  (* the check fires even with the optimizer off *)
  match Eval.eval ~optimize:false (Eval.context ()) expr with
  | _ -> Alcotest.fail "unoptimized interpreter accepted the hazard"
  | exception Error.Dynamic_error _ -> ()

(* Paper-style SQL (Examples 5-10 territory): outer joins, multi-way
   joins, correlated subqueries.  The optimized server must return the
   same serialized XML as the unoptimized one, interpreted and
   compiled. *)
let sql_cases =
  [ "SELECT C.CUSTOMERNAME, O.AMOUNT FROM CUSTOMERS C, PO_CUSTOMERS O \
     WHERE C.CUSTOMERID = O.CUSTOMERID";
    "SELECT C.CUSTOMERNAME, O.AMOUNT FROM CUSTOMERS C, PO_CUSTOMERS O \
     WHERE C.CUSTOMERID = O.CUSTOMERID AND O.AMOUNT > 100";
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C LEFT OUTER JOIN \
     PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C RIGHT OUTER JOIN \
     PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C FULL OUTER JOIN \
     PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
    "SELECT X.CUSTOMERNAME, Y.ORDERID, Z.PAYMENT FROM CUSTOMERS X INNER \
     JOIN PO_CUSTOMERS Y ON X.CUSTOMERID = Y.CUSTOMERID LEFT OUTER JOIN \
     PAYMENTS Z ON X.CUSTOMERID = Z.CUSTID";
    "SELECT C.CUSTOMERNAME, O.AMOUNT, P.PAYMENT FROM CUSTOMERS C, \
     PO_CUSTOMERS O, PAYMENTS P WHERE C.CUSTOMERID = O.CUSTOMERID AND \
     C.CUSTOMERID = P.CUSTID";
    "SELECT A.CUSTOMERID FROM CUSTOMERS A INNER JOIN CUSTOMERS B ON \
     A.CUSTOMERID = B.CUSTOMERID";
    "SELECT L.CUSTOMERNAME, R.CUSTOMERNAME FROM CUSTOMERS L INNER JOIN \
     CUSTOMERS R ON L.TIER = R.TIER WHERE L.CUSTOMERID < R.CUSTOMERID";
    "SELECT CUSTOMERNAME FROM CUSTOMERS C WHERE EXISTS (SELECT 1 FROM \
     PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID AND P.PAYMENT > 100)";
    "SELECT (SELECT COUNT(*) FROM PAYMENTS P WHERE P.CUSTID = \
     C.CUSTOMERID) NPAY FROM CUSTOMERS C";
    "SELECT C.CITY, COUNT(*) N, SUM(P.AMOUNT) T FROM CUSTOMERS C INNER \
     JOIN PO_CUSTOMERS P ON C.CUSTOMERID = P.CUSTOMERID GROUP BY C.CITY \
     ORDER BY T DESC" ]

let sql_agreement () =
  let app = Helpers.demo_app () in
  let env = Semantic.env_of_application app in
  let naive = Server.create ~optimize:false app in
  let opt = Server.create app in
  List.iter
    (fun sql ->
      let t = Translator.translate env sql in
      let xq = t.Translator.xquery in
      let ser items = Serialize.sequence_to_string items in
      let a = ser (Server.execute naive xq) in
      let b = ser (Server.execute opt xq) in
      if a <> b then
        Alcotest.failf "optimizer changed the result of %s\n-- naive:\n%s\n-- optimized:\n%s"
          sql a b;
      let pa = ser (Server.execute_prepared (Server.prepare naive xq)) in
      let pb = ser (Server.execute_prepared (Server.prepare opt xq)) in
      if a <> pa || a <> pb then
        Alcotest.failf "compiled execution diverges on %s" sql)
    sql_cases

let engine_join_agreement () =
  (* the SQL engine's hash path must match its own nested loop — the
     oracle's oracle *)
  let app = Helpers.demo_app () in
  let hash_env = Aqua_sqlengine.Engine.env_of_application app in
  let loop_env = Aqua_sqlengine.Engine.env_of_application ~optimize:false app in
  List.iter
    (fun sql ->
      let a = Aqua_sqlengine.Engine.execute_sql loop_env sql in
      let b = Aqua_sqlengine.Engine.execute_sql hash_env sql in
      match Aqua_relational.Rowset.diff_summary a b with
      | None -> ()
      | Some msg -> Alcotest.failf "engine hash join diverges on %s: %s" sql msg)
    [ "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C INNER JOIN \
       PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
      "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C INNER JOIN \
       PAYMENTS P ON C.CUSTOMERID = P.CUSTID AND P.PAYMENT > 100";
      "SELECT L.CUSTOMERNAME FROM CUSTOMERS L INNER JOIN CUSTOMERS R ON \
       L.TIER = R.TIER AND L.CUSTOMERID < R.CUSTOMERID" ]

(* ---------------------------------------------------------------- *)
(* Randomized corpus: the optimizer is invisible on everything the
   generator can produce. *)

let prop_corpus_identical =
  let app =
    Aqua_workload.Datagen.application
      { Aqua_workload.Datagen.customers = 12; orders = 25;
        lines_per_order = 2; payments = 18 }
  in
  let tables = Aqua_dsp.Metadata.list_tables app in
  let env = Semantic.env_of_application app in
  let naive = Server.create ~optimize:false app in
  let opt = Server.create app in
  QCheck.Test.make
    ~name:"optimized execution is byte-identical on generated statements"
    ~count:150
    QCheck.(
      make
        (fun rand -> Aqua_workload.Querygen.generate rand tables)
        ~print:Aqua_sql.Pretty.statement_to_string)
    (fun stmt ->
      let sql = Aqua_sql.Pretty.statement_to_string stmt in
      let t = Translator.translate env sql in
      let xq = t.Translator.xquery in
      let ser items = Serialize.sequence_to_string items in
      let a = ser (Server.execute naive xq) in
      let b = ser (Server.execute opt xq) in
      let c = ser (Server.execute_prepared (Server.prepare opt xq)) in
      if a <> b || a <> c then
        QCheck.Test.fail_reportf
          "optimizer diverges on: %s\n-- naive:\n%s\n-- optimized:\n%s\n-- compiled:\n%s"
          sql a b c
      else true)

(* ---------------------------------------------------------------- *)
(* Driver-side LRU translation cache (satellite of the same PR)      *)

let lru_cache () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  check_int "empty at connect" 0 (Connection.translation_cache_size conn);
  let q1 = "SELECT CUSTOMERID FROM CUSTOMERS" in
  let r1 = Aqua_driver.Result_set.to_rowset (Connection.execute_query conn q1) in
  check_int "one entry" 1 (Connection.translation_cache_size conn);
  (* a repeat hits the cache (size unchanged) and returns the same rows *)
  let r2 = Aqua_driver.Result_set.to_rowset (Connection.execute_query conn q1) in
  check_int "repeat does not grow" 1 (Connection.translation_cache_size conn);
  (match Aqua_relational.Rowset.diff_summary r1 r2 with
  | None -> ()
  | Some msg -> Alcotest.failf "cached translation changed the result: %s" msg);
  Connection.clear_translation_cache conn;
  check_int "cleared" 0 (Connection.translation_cache_size conn)

let lru_eviction () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  for i = 1 to 140 do
    ignore
      (Connection.execute_query conn
         (Printf.sprintf "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID > %d" i))
  done;
  check_int "capped at capacity" 128 (Connection.translation_cache_size conn);
  (* the most recent statement is still cached: re-running it must not
     evict anything (a hit, not an insert) *)
  ignore
    (Connection.execute_query conn
       "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID > 140");
  check_int "hit does not churn" 128 (Connection.translation_cache_size conn)

let lru_disabled () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect ~translation_cache:false app in
  ignore (Connection.execute_query conn "SELECT CUSTOMERID FROM CUSTOMERS");
  ignore (Connection.execute_query conn "SELECT CITY FROM CUSTOMERS");
  check_int "disabled cache stays empty" 0 (Connection.translation_cache_size conn)

let suite =
  ( "optimize",
    [ Helpers.case "hand-written flwors agree" hand_written_flwors;
      Helpers.case "accepted cast divergence" accepted_cast_divergence;
      Helpers.case "report counts" report_counts;
      Helpers.case "where before binding fails" where_before_binding_fails;
      Helpers.case "sql battery agrees" sql_agreement;
      Helpers.case "engine hash join agrees" engine_join_agreement;
      Helpers.case "lru cache basics" lru_cache;
      Helpers.case "lru cache eviction" lru_eviction;
      Helpers.case "lru cache disabled" lru_disabled;
      Helpers.qcheck prop_corpus_identical ] )
