(* Relational substrate: values, three-valued logic, schemas, tables,
   rowset comparison. *)

module Value = Aqua_relational.Value
module Sql_type = Aqua_relational.Sql_type
module Schema = Aqua_relational.Schema
module Table = Aqua_relational.Table
module Rowset = Aqua_relational.Rowset
module Node = Aqua_xml.Node

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let three_valued_logic () =
  let open Value in
  check_bool "t and u" true (and3 True Unknown = Unknown);
  check_bool "f and u" true (and3 False Unknown = False);
  check_bool "t or u" true (or3 True Unknown = True);
  check_bool "f or u" true (or3 False Unknown = Unknown);
  check_bool "not u" true (not3 Unknown = Unknown);
  check_bool "null equality is unknown" true (equal3 Null (Int 1) = Unknown);
  check_bool "null vs null is unknown" true (equal3 Null Null = Unknown)

let sql_comparison () =
  check_bool "null sorts first" true (Value.compare_sql Value.Null (Value.Int 0) < 0);
  check_bool "int vs num" true
    (Value.compare_sql (Value.Int 2) (Value.Num 2.5) < 0);
  check_bool "strings" true
    (Value.compare_sql (Value.Str "a") (Value.Str "b") < 0);
  (match Value.compare_sql (Value.Int 1) (Value.Str "x") with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "int vs string compared")

let group_keys () =
  check_bool "nulls group together" true
    (Value.group_key Value.Null = Value.group_key Value.Null);
  check_bool "int and equal num share keys" true
    (Value.group_key (Value.Int 3) = Value.group_key (Value.Num 3.0))

let promotion () =
  check_bool "int+decimal" true
    (Sql_type.promote Sql_type.Integer (Sql_type.Decimal None)
    = Some (Sql_type.Decimal None));
  check_bool "decimal+double" true
    (Sql_type.promote (Sql_type.Decimal None) Sql_type.Double
    = Some Sql_type.Double);
  check_bool "varchar not numeric" true
    (Sql_type.promote (Sql_type.Varchar None) Sql_type.Integer = None);
  check_bool "comparable strings" true
    (Sql_type.comparable (Sql_type.Char 3) (Sql_type.Varchar None));
  check_bool "date and timestamp comparable" true
    (Sql_type.comparable Sql_type.Date Sql_type.Timestamp);
  check_bool "int and varchar not comparable" false
    (Sql_type.comparable Sql_type.Integer (Sql_type.Varchar None))

let schema_checks () =
  let schema =
    [ Schema.column ~nullable:false "ID" Sql_type.Integer;
      Schema.column "NAME" (Sql_type.Varchar (Some 10)) ]
  in
  check_bool "valid row" true
    (Schema.check_row schema [| Value.Int 1; Value.Str "x" |] = Ok ());
  check_bool "null ok when nullable" true
    (Schema.check_row schema [| Value.Int 1; Value.Null |] = Ok ());
  check_bool "null rejected when not nullable" true
    (Result.is_error (Schema.check_row schema [| Value.Null; Value.Str "x" |]));
  check_bool "arity" true
    (Result.is_error (Schema.check_row schema [| Value.Int 1 |]));
  check_bool "type mismatch" true
    (Result.is_error
       (Schema.check_row schema [| Value.Str "oops"; Value.Str "x" |]))

let table_flat_xml () =
  let t =
    Table.create "T"
      [ Schema.column ~nullable:false "A" Sql_type.Integer;
        Schema.column "B" (Sql_type.Varchar None) ]
  in
  Table.insert t [ Value.Int 1; Value.Str "x" ];
  Table.insert t [ Value.Int 2; Value.Null ];
  let xml = Table.to_flat_xml t in
  Alcotest.(check int) "two rows" 2 (List.length xml);
  (match xml with
  | [ r1; r2 ] ->
    check_str "row element name" "ns0:T" (Option.get (Node.name_of r1));
    Alcotest.(check int) "row 1 has both columns" 2
      (List.length (Node.children_elements r1));
    Alcotest.(check int) "null column is absent" 1
      (List.length (Node.children_elements r2))
  | _ -> Alcotest.fail "wrong row count");
  (match Table.insert t [ Value.Str "bad"; Value.Null ] with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "bad row accepted")

let rowset_comparison () =
  let schema = [ Schema.column "A" Sql_type.Integer ] in
  let rs rows = Rowset.make schema (List.map (fun i -> [| Value.Int i |]) rows) in
  check_bool "multiset equal ignores order" true
    (Rowset.equal_as_multisets (rs [ 1; 2; 2 ]) (rs [ 2; 1; 2 ]));
  check_bool "multiset counts matter" false
    (Rowset.equal_as_multisets (rs [ 1; 2 ]) (rs [ 1; 1 ]));
  check_bool "list equality is ordered" false
    (Rowset.equal_as_lists (rs [ 1; 2 ]) (rs [ 2; 1 ]));
  check_bool "diff none on equal" true
    (Rowset.diff_summary (rs [ 1 ]) (rs [ 1 ]) = None);
  check_bool "diff reports cardinality" true
    (Rowset.diff_summary (rs [ 1 ]) (rs [ 1; 1 ]) <> None);
  check_bool "order-by projection check" true
    (Rowset.sorted_under_order_by ~keys:[ 0 ] (rs [ 1; 2 ]) (rs [ 1; 2 ]))

let value_parsing () =
  check_bool "int" true (Value.of_string Sql_type.Integer "42" = Value.Int 42);
  check_bool "decimal" true
    (Value.of_string (Sql_type.Decimal None) "4.5" = Value.Num 4.5);
  check_bool "bool" true (Value.of_string Sql_type.Boolean "true" = Value.Bool true);
  (match Value.of_string Sql_type.Integer "zap" with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "bad int accepted")

let prop_group_key_injective =
  QCheck.Test.make ~name:"group keys separate distinct ints" ~count:300
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      (a = b) = (Value.group_key (Value.Int a) = Value.group_key (Value.Int b)))

let suite =
  ( "relational",
    [ Helpers.case "three-valued logic" three_valued_logic;
      Helpers.case "sql comparison" sql_comparison;
      Helpers.case "group keys" group_keys;
      Helpers.case "type promotion" promotion;
      Helpers.case "schema checks" schema_checks;
      Helpers.case "flat xml" table_flat_xml;
      Helpers.case "rowset comparison" rowset_comparison;
      Helpers.case "value parsing" value_parsing;
      Helpers.qcheck prop_group_key_injective ] )
