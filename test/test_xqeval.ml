(* XQuery interpreter semantics. *)

module X = Aqua_xquery.Ast
module Eval = Aqua_xqeval.Eval
module Error = Aqua_xqeval.Error
module Functions = Aqua_xqeval.Functions
module Item = Aqua_xml.Item
module Atomic = Aqua_xml.Atomic
module Node = Aqua_xml.Node

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let ctx () = Eval.context ()
let run ?(ctx = ctx ()) e = Eval.eval ctx e

let int_result e =
  match run e with
  | [ Item.Atomic (Atomic.Integer i) ] -> i
  | seq ->
    Alcotest.failf "expected one integer, got %s"
      (Format.asprintf "%a" Item.pp_sequence seq)

let seq_lexicals e =
  List.map Atomic.to_lexical (Item.atomize (run e))

let arithmetic () =
  check_int "add" 5 (int_result (X.Binop (X.B_arith X.Add, X.int 2, X.int 3)));
  check_int "mul" 6 (int_result (X.Binop (X.B_arith X.Mul, X.int 2, X.int 3)));
  (* integer div yields a decimal *)
  (match run (X.Binop (X.B_arith X.Div, X.int 7, X.int 2)) with
  | [ Item.Atomic (Atomic.Decimal f) ] -> Alcotest.(check (float 1e-9)) "div" 3.5 f
  | _ -> Alcotest.fail "expected decimal");
  check_int "idiv" 3 (int_result (X.Binop (X.B_arith X.Idiv, X.int 7, X.int 2)));
  check_int "mod" 1 (int_result (X.Binop (X.B_arith X.Mod, X.int 7, X.int 2)));
  (* empty propagates *)
  check_bool "empty + 1 = empty" true
    (run (X.Binop (X.B_arith X.Add, X.empty_seq, X.int 1)) = []);
  (* untyped casts to double *)
  (match run (X.Binop (X.B_arith X.Add, X.Literal (Atomic.Untyped "2.5"), X.int 1)) with
  | [ Item.Atomic a ] -> Alcotest.(check (float 1e-9)) "untyped arith" 3.5 (Atomic.cast_double a)
  | _ -> Alcotest.fail "expected a number");
  (match run (X.Binop (X.B_arith X.Div, X.int 1, X.int 0)) with
  | exception Error.Dynamic_error _ -> ()
  | _ -> Alcotest.fail "division by zero accepted")

let comparisons () =
  let t e = Item.effective_boolean_value (run e) in
  check_bool "general eq" true (t (X.Binop (X.B_general X.Eq, X.int 1, X.int 1)));
  check_bool "general lt" true (t (X.Binop (X.B_general X.Lt, X.int 1, X.int 2)));
  (* existential semantics *)
  check_bool "existential" true
    (t (X.Binop (X.B_general X.Eq, X.int 2, X.Seq [ X.int 1; X.int 2 ])));
  check_bool "empty comparison is false" false
    (t (X.Binop (X.B_general X.Eq, X.empty_seq, X.int 1)));
  (* value comparison returns empty on empty *)
  check_bool "value cmp on empty" true
    (run (X.Binop (X.B_value X.Eq, X.empty_seq, X.int 1)) = [])

let paths_and_predicates () =
  let doc =
    X.Literal (Atomic.Integer 0)
    (* placeholder, replaced below *)
  in
  ignore doc;
  let row name v =
    Node.element "ROW" [ Node.element name [ Node.text v ] ]
  in
  let ctx =
    Eval.bind (ctx ()) "rows"
      [ Item.Node (row "A" "1"); Item.Node (row "A" "2"); Item.Node (row "B" "3") ]
  in
  let path steps = X.Path (X.var "rows", List.map (fun name -> { X.name; predicates = [] }) steps) in
  check_int "child count"
    2
    (List.length (Eval.eval ctx (path [ "A" ])));
  (* positional predicate *)
  let first =
    X.Filter (X.var "rows", X.int 1)
  in
  check_int "positional filter" 1 (List.length (Eval.eval ctx first));
  (* boolean predicate with context item *)
  let with_a =
    X.Filter
      ( X.var "rows",
        X.call "fn:exists" [ X.Path (X.Context_item, [ { X.name = "A"; predicates = [] } ]) ] )
  in
  check_int "boolean filter" 2 (List.length (Eval.eval ctx with_a));
  (* wildcard *)
  check_int "wildcard" 3 (List.length (Eval.eval ctx (path [ "*" ])))

let construction () =
  (* adjacent atomics are joined with spaces in element content *)
  let e =
    X.Elem { name = "E"; content = [ X.Seq [ X.int 1; X.int 2 ]; X.Text "x" ] }
  in
  match run e with
  | [ Item.Node n ] -> check_str "content" "1 2x" (Node.string_value n)
  | _ -> Alcotest.fail "expected one node"

let flwor_basics () =
  let ctx = Eval.bind (ctx ()) "xs" (List.map Item.atomic [ Atomic.Integer 1; Atomic.Integer 2; Atomic.Integer 3 ]) in
  let flwor =
    X.Flwor
      {
        X.clauses =
          [ X.For { var = "x"; source = X.var "xs" };
            X.Where (X.Binop (X.B_general X.Gt, X.var "x", X.int 1));
            X.Let { var = "y"; value = X.Binop (X.B_arith X.Mul, X.var "x", X.int 10) } ];
        X.return = X.var "y";
      }
  in
  Alcotest.(check (list string)) "for/where/let" [ "20"; "30" ]
    (List.map Atomic.to_lexical (Item.atomize (Eval.eval ctx flwor)))

let flwor_order_by () =
  let ctx = Eval.bind (ctx ()) "xs" (List.map Item.atomic [ Atomic.Integer 2; Atomic.Integer 1; Atomic.Integer 3 ]) in
  let sorted descending =
    X.Flwor
      {
        X.clauses =
          [ X.For { var = "x"; source = X.var "xs" };
            X.Order_by [ { X.key = X.var "x"; descending; empty = X.Empty_least } ] ];
        X.return = X.var "x";
      }
  in
  Alcotest.(check (list string)) "ascending" [ "1"; "2"; "3" ]
    (List.map Atomic.to_lexical (Item.atomize (Eval.eval ctx (sorted false))));
  Alcotest.(check (list string)) "descending" [ "3"; "2"; "1" ]
    (List.map Atomic.to_lexical (Item.atomize (Eval.eval ctx (sorted true))))

let flwor_order_empty () =
  let ctx =
    Eval.bind (ctx ()) "rows"
      [ Item.Node (Node.element "R" [ Node.element "V" [ Node.text "5" ] ]);
        Item.Node (Node.element "R" []) ]
  in
  let q =
    X.Flwor
      {
        X.clauses =
          [ X.For { var = "r"; source = X.var "rows" };
            X.Order_by
              [ { X.key = X.path1 (X.var "r") "V";
                  descending = false;
                  empty = X.Empty_least } ] ];
        X.return = X.call "fn:count" [ X.path1 (X.var "r") "V" ];
      }
  in
  Alcotest.(check (list string)) "empty sorts first" [ "0"; "1" ]
    (List.map Atomic.to_lexical (Item.atomize (Eval.eval ctx q)))

let group_by_extension () =
  let row k v =
    Item.Node
      (Node.element "R"
         [ Node.element "K" [ Node.text k ]; Node.element "V" [ Node.text v ] ])
  in
  let ctx = Eval.bind (ctx ()) "rows" [ row "a" "1"; row "b" "2"; row "a" "3" ] in
  let q =
    X.Flwor
      {
        X.clauses =
          [ X.For { var = "r"; source = X.var "rows" };
            X.Group
              {
                grouped = "r";
                partition = "p";
                keys = [ (X.call "fn:data" [ X.path1 (X.var "r") "K" ], "k") ];
              } ];
        X.return =
          X.call "fn:concat"
            [ X.var "k";
              X.str ":";
              X.call "fn:string"
                [ X.call "fn:count" [ X.var "p" ] ] ];
      }
  in
  Alcotest.(check (list string)) "groups in first-seen order" [ "a:2"; "b:1" ]
    (List.map Atomic.to_lexical (Item.atomize (Eval.eval ctx q)))

let group_preserves_outer_bindings () =
  let ctx = Eval.bind (ctx ()) "outer" (Item.of_int 99) in
  let ctx = Eval.bind ctx "xs" (List.map Item.atomic [ Atomic.Integer 1; Atomic.Integer 1 ]) in
  let q =
    X.Flwor
      {
        X.clauses =
          [ X.For { var = "x"; source = X.var "xs" };
            X.Group { grouped = "x"; partition = "p"; keys = [ (X.var "x", "k") ] } ];
        X.return = X.var "outer";
      }
  in
  Alcotest.(check (list string)) "outer visible after group" [ "99" ]
    (List.map Atomic.to_lexical (Item.atomize (Eval.eval ctx q)))

let quantifiers () =
  let t e = Item.effective_boolean_value (run e) in
  let xs = X.Seq [ X.int 1; X.int 2; X.int 3 ] in
  check_bool "some" true
    (t (X.Quantified { every = false; bindings = [ ("x", xs) ];
                       satisfies = X.Binop (X.B_general X.Gt, X.var "x", X.int 2) }));
  check_bool "every false" false
    (t (X.Quantified { every = true; bindings = [ ("x", xs) ];
                       satisfies = X.Binop (X.B_general X.Gt, X.var "x", X.int 2) }));
  check_bool "every over empty" true
    (t (X.Quantified { every = true; bindings = [ ("x", X.empty_seq) ];
                       satisfies = X.call "fn:false" [] }))

let function_library () =
  check_str "string-join"
    "a,b"
    (Item.string_value (run (X.call "fn:string-join" [ X.Seq [ X.str "a"; X.str "b" ]; X.str "," ])));
  check_str "substring" "bcd"
    (Item.string_value (run (X.call "fn:substring" [ X.str "abcde"; X.int 2; X.int 3 ])));
  check_str "concat" "xy"
    (Item.string_value (run (X.call "fn:concat" [ X.str "x"; X.str "y" ])));
  check_int "count" 2 (int_result (X.call "fn:count" [ X.Seq [ X.int 1; X.int 2 ] ]));
  check_int "sum" 6 (int_result (X.call "fn:sum" [ X.Seq [ X.int 1; X.int 2; X.int 3 ] ]));
  check_int "sum of empty is 0" 0 (int_result (X.call "fn:sum" [ X.empty_seq ]));
  check_bool "avg of empty is empty" true (run (X.call "fn:avg" [ X.empty_seq ]) = []);
  (* min/max cast untyped to double per F&O *)
  check_str "max over untyped" "10"
    (Item.string_value
       (run (X.call "fn:max" [ X.Seq [ X.Literal (Atomic.Untyped "9"); X.Literal (Atomic.Untyped "10") ] ])));
  Alcotest.(check (list string)) "distinct-values" [ "1"; "2" ]
    (seq_lexicals (X.call "fn:distinct-values" [ X.Seq [ X.int 1; X.int 2; X.int 1 ] ]));
  Alcotest.(check (list string)) "subsequence" [ "2"; "3" ]
    (seq_lexicals (X.call "fn:subsequence" [ X.Seq [ X.int 1; X.int 2; X.int 3 ]; X.int 2; X.int 2 ]));
  check_bool "like %" true
    (Item.effective_boolean_value (run (X.call "fn-bea:like" [ X.str "hello"; X.str "h%o" ])));
  check_bool "like _" false
    (Item.effective_boolean_value (run (X.call "fn-bea:like" [ X.str "hello"; X.str "h_o" ])));
  check_str "if-empty default" "d"
    (Item.string_value (run (X.call "fn-bea:if-empty" [ X.empty_seq; X.str "d" ])));
  check_str "xml-escape" "a&amp;b&lt;c&gt;"
    (Item.string_value (run (X.call "fn-bea:xml-escape" [ X.str "a&b<c>" ])));
  check_str "serialize-atomic" "42"
    (Item.string_value (run (X.call "fn-bea:serialize-atomic" [ X.int 42 ])));
  check_bool "unknown function" true
    (match run (X.call "fn:bogus" []) with
    | exception Error.Dynamic_error _ -> true
    | _ -> false);
  check_bool "registry lists names" true
    (List.mem "fn:string-join" (Functions.names ()))

let casts_in_queries () =
  check_int "xs:integer" 7 (int_result (X.call "xs:integer" [ X.str "7" ]));
  check_bool "cast of empty is empty" true (run (X.call "xs:integer" [ X.empty_seq ]) = []);
  (match run (X.call "xs:integer" [ X.str "x" ]) with
  | exception Error.Dynamic_error _ -> ()
  | _ -> Alcotest.fail "bad cast accepted")

let if_and_ebv () =
  check_int "then" 1 (int_result (X.If (X.call "fn:true" [], X.int 1, X.int 2)));
  check_int "else" 2 (int_result (X.If (X.empty_seq, X.int 1, X.int 2)));
  (match run (X.If (X.Seq [ X.int 1; X.int 2 ], X.int 1, X.int 2)) with
  | exception Atomic.Cast_error _ -> ()
  | _ -> Alcotest.fail "multi-atomic EBV accepted")

let undefined_variable () =
  match run (X.var "nope") with
  | exception Error.Dynamic_error _ -> ()
  | _ -> Alcotest.fail "undefined variable accepted"

(* properties pinning the aggregate and ordering semantics to OCaml
   reference implementations *)
let prop_sum_matches =
  QCheck.Test.make ~name:"fn:sum matches list sum" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let seq = X.Seq (List.map X.int xs) in
      match run (X.call "fn:sum" [ seq ]) with
      | [ Item.Atomic (Atomic.Integer total) ] ->
        total = List.fold_left ( + ) 0 xs
      | _ -> false)

let prop_minmax_matches =
  QCheck.Test.make ~name:"fn:min/fn:max match list extrema" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range (-1000) 1000))
    (fun xs ->
      let seq = X.Seq (List.map X.int xs) in
      let got name =
        match run (X.call name [ seq ]) with
        | [ Item.Atomic (Atomic.Integer v) ] -> v
        | _ -> max_int
      in
      got "fn:min" = List.fold_left min (List.hd xs) xs
      && got "fn:max" = List.fold_left max (List.hd xs) xs)

let prop_order_by_sorts =
  QCheck.Test.make ~name:"flwor order by sorts" ~count:200
    QCheck.(list (int_range (-100) 100))
    (fun xs ->
      let q =
        X.Flwor
          {
            X.clauses =
              [ X.For { var = "x"; source = X.Seq (List.map X.int xs) };
                X.Order_by
                  [ { X.key = X.var "x"; descending = false;
                      empty = X.Empty_least } ] ];
            X.return = X.var "x";
          }
      in
      let got =
        List.map
          (function
            | Item.Atomic (Atomic.Integer i) -> i
            | _ -> max_int)
          (run q)
      in
      got = List.sort compare xs)

let prop_distinct_values =
  QCheck.Test.make ~name:"fn:distinct-values keeps one of each" ~count:200
    QCheck.(list (int_range 0 20))
    (fun xs ->
      let got =
        List.length (run (X.call "fn:distinct-values" [ X.Seq (List.map X.int xs) ]))
      in
      got = List.length (List.sort_uniq compare xs))

let suite =
  ( "xqeval",
    [ Helpers.case "arithmetic" arithmetic;
      Helpers.case "comparisons" comparisons;
      Helpers.case "paths and predicates" paths_and_predicates;
      Helpers.case "construction" construction;
      Helpers.case "flwor basics" flwor_basics;
      Helpers.case "order by" flwor_order_by;
      Helpers.case "order by with empty" flwor_order_empty;
      Helpers.case "group-by extension" group_by_extension;
      Helpers.case "group preserves outer bindings" group_preserves_outer_bindings;
      Helpers.case "quantifiers" quantifiers;
      Helpers.case "function library" function_library;
      Helpers.case "casts" casts_in_queries;
      Helpers.case "if and ebv" if_and_ebv;
      Helpers.case "undefined variable" undefined_variable;
      Helpers.qcheck prop_sum_matches;
      Helpers.qcheck prop_minmax_matches;
      Helpers.qcheck prop_order_by_sorts;
      Helpers.qcheck prop_distinct_values ] )
