(* Callable statements: parameterized data-service functions exposed
   as stored procedures (paper Figure 2), plus logical services
   authored as XQuery text. *)

module Artifact = Aqua_dsp.Artifact
module Metadata = Aqua_dsp.Metadata
module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Connection = Aqua_driver.Connection
module Callable = Aqua_driver.Callable
module Result_set = Aqua_driver.Result_set
module Errors = Aqua_translator.Errors

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* demo catalog + a text-authored parameterized view over CUSTOMERS *)
let app_with_proc () =
  let app = Aqua_workload.Demo.build () in
  let body_text =
    "import schema namespace c = \"ld:TestDataServices/CUSTOMERS\" at \
     \"ld:TestDataServices/schemas/CUSTOMERS.xsd\";\n\
     for $r in c:CUSTOMERS() where $r/TIER = $p1 return $r"
  in
  ignore
    (Artifact.add_logical_service app ~project:"Procs" ~name:"CustomerViews"
       [ { Artifact.fn_name = "customersByTier";
           params =
             [ { Artifact.param_name = "tier"; param_type = Sql_type.Integer } ];
           element_name = "CUSTOMERS";
           columns =
             [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
               Schema.column ~nullable:false "CUSTOMERNAME"
                 (Sql_type.Varchar (Some 40));
               Schema.column "CITY" (Sql_type.Varchar (Some 30));
               Schema.column "TIER" Sql_type.Integer ];
           body = Artifact.logical_body_of_text body_text;
         } ]);
  app

let listed_as_procedure () =
  let app = app_with_proc () in
  let procs = Metadata.list_procedures app in
  check_int "one procedure" 1 (List.length procs);
  let meta, params = List.hd procs in
  check_str "name" "customersByTier" meta.Metadata.table;
  check_str "schema" "Procs/CustomerViews" meta.Metadata.schema;
  check_int "params" 1 (List.length params)

let call_roundtrip () =
  let app = app_with_proc () in
  let conn = Connection.connect app in
  let stmt = Callable.prepare conn "{call customersByTier(?)}" in
  check_int "parameter count" 1 (Callable.parameter_count stmt);
  Callable.set_int stmt 1 1;
  let rs = Callable.execute_query stmt in
  let rows = Result_set.to_rowset rs in
  (* demo catalog has two tier-1 customers *)
  check_int "tier 1 rows" 2 (List.length rows.Aqua_relational.Rowset.rows);
  (* rebind and re-execute *)
  Callable.set_int stmt 1 2;
  check_int "tier 2 rows" 2
    (List.length
       (Result_set.to_rowset (Callable.execute_query stmt))
         .Aqua_relational.Rowset.rows);
  (* decoded values are typed *)
  let rs3 =
    let s = Callable.prepare conn "CALL customersByTier(?)" in
    Callable.set_int s 1 3;
    Callable.execute_query s
  in
  Alcotest.(check bool) "cursor works" true (Result_set.next rs3);
  check_str "name column" "Zenith Parts and Service"
    (Option.get (Result_set.get_string rs3 2))

let call_errors () =
  let app = app_with_proc () in
  let conn = Connection.connect app in
  (* unknown procedure *)
  (match Callable.prepare conn "{call nope()}" with
  | exception Errors.Error e ->
    Alcotest.(check bool) "kind" true (e.Errors.kind = Errors.Unknown_table)
  | _ -> Alcotest.fail "unknown procedure accepted");
  (* wrong arity *)
  (match Callable.prepare conn "{call customersByTier(?, ?)}" with
  | exception Errors.Error e ->
    Alcotest.(check bool) "kind" true (e.Errors.kind = Errors.Cardinality)
  | _ -> Alcotest.fail "wrong arity accepted");
  (* bad syntax *)
  (match Callable.prepare conn "call customersByTier" with
  | exception Errors.Error _ -> ()
  | _ -> Alcotest.fail "missing parens accepted");
  (* unbound parameter *)
  let stmt = Callable.prepare conn "{call customersByTier(?)}" in
  match Callable.execute_query stmt with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbound parameter accepted"

let schema_qualified_call () =
  let app = app_with_proc () in
  let conn = Connection.connect app in
  let stmt =
    Callable.prepare conn "{call \"Procs/CustomerViews\".customersByTier(?)}"
  in
  Callable.set_int stmt 1 1;
  check_int "qualified call works" 2
    (List.length
       (Result_set.to_rowset (Callable.execute_query stmt))
         .Aqua_relational.Rowset.rows)

let text_authored_logical_service () =
  (* the text-authored view must also be usable as a plain TABLE when
     it has no parameters *)
  let app = Aqua_workload.Demo.build () in
  ignore
    (Artifact.add_logical_service app ~project:"Views" ~name:"BostonCustomers"
       [ { Artifact.fn_name = "BOSTON";
           params = [];
           element_name = "CUSTOMERS";
           columns =
             [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
               Schema.column ~nullable:false "CUSTOMERNAME"
                 (Sql_type.Varchar (Some 40)) ];
           body =
             Artifact.logical_body_of_text
               "import schema namespace c = \"ld:TestDataServices/CUSTOMERS\" \
                at \"ld:TestDataServices/schemas/CUSTOMERS.xsd\";\n\
                for $r in c:CUSTOMERS() where $r/CITY = \"Boston\" return \
                <CUSTOMERS><CUSTOMERID>{fn:data($r/CUSTOMERID)}</CUSTOMERID>\
                <CUSTOMERNAME>{fn:data($r/CUSTOMERNAME)}</CUSTOMERNAME>\
                </CUSTOMERS>";
         } ]);
  let rows =
    Helpers.driver_rows app "SELECT CUSTOMERNAME FROM BOSTON ORDER BY 1"
  in
  Helpers.check_rows "logical view rows" [ [ "Joe" ]; [ "Supermart" ] ] rows

let suite =
  ( "callable",
    [ Helpers.case "listed as procedure" listed_as_procedure;
      Helpers.case "call round-trip" call_roundtrip;
      Helpers.case "call errors" call_errors;
      Helpers.case "schema-qualified call" schema_qualified_call;
      Helpers.case "text-authored logical service" text_authored_logical_service ] )
