(* The batched FLWOR engine against its row-at-a-time oracle
   (DESIGN.md section 12): the vectorized pipeline must be
   observationally identical to the tuple-at-a-time interpreter at
   every batch size — including sizes that leave a partial final batch
   — while budget probes still fire at batch boundaries, failpoints
   inside the vectorized path still degrade gracefully, and the batch
   counters stay silent when vectorization is off. *)

module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Rowset = Aqua_relational.Rowset
module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Engine = Aqua_sqlengine.Engine
module Artifact = Aqua_dsp.Artifact
module Scan_cache = Aqua_dsp.Scan_cache
module Server = Aqua_dsp.Server
module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item
module Batch = Aqua_xqeval.Batch
module Budget = Aqua_resilience.Budget
module Failpoint = Aqua_resilience.Failpoint
module Sqlstate = Aqua_resilience.Sqlstate
module Telemetry = Aqua_core.Telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The edge-case sweep: 1 degenerates to row-at-a-time shape, 2 and 7
   leave partial final batches on every realistic cardinality, 1024 is
   the shipping default (most plans fit one batch). *)
let edge_sizes = [ 1; 2; 7; 1024 ]

let with_batch_size n f =
  let prev = Batch.size () in
  Batch.set_size n;
  Fun.protect ~finally:(fun () -> Batch.set_size prev) f

let with_failpoints ?seed spec f =
  Failpoint.arm ?seed spec;
  Fun.protect ~finally:Failpoint.disarm f

let with_telemetry f =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) f

(* Execute through the driver, capturing errors: a statement on which
   both evaluators raise (same governor, same dynamic error class)
   counts as agreement. *)
let run conn sql =
  match Result_set.to_rowset (Connection.execute_query conn sql) with
  | rs -> Ok rs
  | exception e -> Error (Printexc.to_string e)

let agree ~what sql vec oracle =
  match (vec, oracle) with
  | Ok v, Ok o -> (
    match Rowset.diff_summary o v with
    | None -> ()
    | Some msg ->
      Alcotest.failf "%s diverged on %s: %s\n-- oracle:\n%s\n-- vectorized:\n%s"
        what sql msg (Rowset.to_string o) (Rowset.to_string v))
  | Error _, Error _ -> ()
  | Ok _, Error e ->
    Alcotest.failf "%s: oracle raised (%s) but vectorized succeeded on %s"
      what e sql
  | Error e, Ok _ ->
    Alcotest.failf "%s: vectorized raised (%s) but oracle succeeded on %s"
      what e sql

(* --------------------------------------------------------------- *)
(* Fixed batteries: the full differential battery (demo app) and the
   paper's running examples (Datagen app, the P6/P12 schema).        *)

let battery_at_size size () =
  let app = Helpers.demo_app () in
  let vec = Connection.connect app in
  let oracle = Connection.connect ~vectorize:false app in
  with_batch_size size @@ fun () ->
  List.iter
    (fun sql ->
      agree ~what:(Printf.sprintf "battery@%d" size) sql (run vec sql)
        (run oracle sql))
    Test_differential.battery

(* The queries the paper's examples reduce to on the benchmark schema,
   P6/P12 join shape included. *)
let paper_queries =
  [ "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME LIKE 'C%'";
    "SELECT * FROM CUSTOMERS";
    "SELECT C.CUSTOMERNAME, O.ORDERID FROM CUSTOMERS C, ORDERS O \
     WHERE C.CUSTOMERID = O.CUSTOMERID AND O.PRIORITY > 1";
    "SELECT C.CUSTOMERID, P.PAYMENT FROM CUSTOMERS C LEFT OUTER JOIN \
     PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
    "SELECT INFO.ID, INFO.NAME FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME \
     FROM CUSTOMERS) AS INFO WHERE INFO.ID > 3";
    "SELECT O.STATUS, COUNT(*) N, SUM(O.PRIORITY) S FROM ORDERS O \
     GROUP BY O.STATUS ORDER BY O.STATUS";
    "SELECT C.CUSTOMERNAME, (SELECT COUNT(*) FROM ORDERS O \
     WHERE O.CUSTOMERID = C.CUSTOMERID) N FROM CUSTOMERS C" ]

let bench_app = lazy (
  Aqua_workload.Datagen.application
    { Aqua_workload.Datagen.customers = 12; orders = 25; lines_per_order = 2;
      payments = 18 })

let paper_battery () =
  let app = Lazy.force bench_app in
  let vec = Connection.connect app in
  let oracle = Connection.connect ~vectorize:false app in
  List.iter
    (fun size ->
      with_batch_size size @@ fun () ->
      List.iter
        (fun sql ->
          agree ~what:(Printf.sprintf "paper@%d" size) sql (run vec sql)
            (run oracle sql))
        paper_queries)
    edge_sizes

(* --------------------------------------------------------------- *)
(* Randomized differential sweep: every generated statement must
   agree with the row-at-a-time oracle at every edge batch size.     *)

let prop_vectorized_differential =
  let app = Lazy.force bench_app in
  let tables = Aqua_dsp.Metadata.list_tables app in
  let vec = Connection.connect app in
  let oracle = Connection.connect ~vectorize:false app in
  QCheck.Test.make ~name:"random statements agree at every batch size"
    ~count:60
    QCheck.(
      make
        (fun rand -> Aqua_workload.Querygen.generate rand tables)
        ~print:Aqua_sql.Pretty.statement_to_string)
    (fun stmt ->
      let sql = Aqua_sql.Pretty.statement_to_string stmt in
      let expected = run oracle sql in
      List.iter
        (fun size ->
          with_batch_size size @@ fun () ->
          agree ~what:(Printf.sprintf "qcheck@%d" size) sql (run vec sql)
            expected)
        edge_sizes;
      true)

(* --------------------------------------------------------------- *)
(* Budget probes at batch boundaries: the vectorized driver calls
   Budget.probe between batches, so governors trip with the same
   SQLSTATEs as the row-at-a-time path — even when the whole result
   fits a single batch.                                              *)

let sqlstate_of_query conn sql =
  match Connection.execute_query conn sql with
  | exception Sqlstate.Error e -> e.Sqlstate.sqlstate
  | _ -> Alcotest.fail "expected the governor to trip"

let governors_under_vectorization () =
  let app = Helpers.demo_app () in
  let sql = "SELECT * FROM CUSTOMERS" in
  List.iter
    (fun size ->
      with_batch_size size @@ fun () ->
      let fuel =
        Connection.connect ~limits:(Budget.limits ~max_fuel:10 ()) app
      in
      Alcotest.(check string)
        (Printf.sprintf "fuel governor @%d" size)
        "53000" (sqlstate_of_query fuel sql);
      let rows =
        Connection.connect ~limits:(Budget.limits ~max_rows:2 ()) app
      in
      Alcotest.(check string)
        (Printf.sprintf "row governor @%d" size)
        "53400" (sqlstate_of_query rows sql);
      let deadline =
        Connection.connect ~limits:(Budget.limits ~timeout_ms:0 ()) app
      in
      Alcotest.(check string)
        (Printf.sprintf "deadline probed at batch boundary @%d" size)
        "57014" (sqlstate_of_query deadline sql))
    [ 1; 7; 1024 ]

(* --------------------------------------------------------------- *)
(* Failpoint inside the vectorized pipeline: the "xqeval.batch" site
   fires once per batch boundary; a fault there must degrade to the
   row-at-a-time rerun (which never reaches the site) and still
   produce the oracle rows.                                          *)

let failpoint_falls_back_to_oracle () =
  let app = Helpers.demo_app () in
  let sql =
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C INNER JOIN PAYMENTS P \
     ON C.CUSTOMERID = P.CUSTID"
  in
  let oracle = Engine.execute_sql (Engine.env_of_application app) sql in
  with_telemetry @@ fun () ->
  with_failpoints "xqeval.batch=fail" @@ fun () ->
  let conn = Connection.connect app in
  let rs = Connection.execute_query conn sql in
  (match Rowset.diff_summary oracle (Result_set.to_rowset rs) with
  | None -> ()
  | Some msg -> Alcotest.failf "fallback produced wrong rows: %s" msg);
  check_bool "the batch fault actually fired" true
    (Telemetry.value Telemetry.c_faults_injected >= 1);
  check_bool "fallback counted" true
    (Telemetry.value Telemetry.c_fallbacks_unoptimized >= 1)

(* A mid-stream fault (second batch boundary) exercises partial-batch
   teardown before the fallback rerun. *)
let midstream_failpoint_falls_back () =
  let app = Helpers.demo_app () in
  let sql = "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS" in
  let oracle = Engine.execute_sql (Engine.env_of_application app) sql in
  with_batch_size 2 @@ fun () ->
  with_failpoints "xqeval.batch=at(2)" @@ fun () ->
  let conn = Connection.connect app in
  let rs = Connection.execute_query conn sql in
  match Rowset.diff_summary oracle (Result_set.to_rowset rs) with
  | None -> ()
  | Some msg -> Alcotest.failf "mid-stream fallback wrong rows: %s" msg

(* --------------------------------------------------------------- *)
(* Counter hygiene: ~vectorize:false must leave the xqeval.batch.*
   counters untouched; the vectorized path must move them.           *)

let batch_counters_respect_toggle () =
  let app = Helpers.demo_app () in
  let sql = "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID > 1" in
  with_telemetry @@ fun () ->
  let oracle = Connection.connect ~vectorize:false app in
  ignore (Connection.execute_query oracle sql);
  let m = Telemetry.snapshot () in
  check_int "no batches without vectorization" 0 m.Telemetry.batch_batches;
  check_int "no batch rows without vectorization" 0 m.Telemetry.batch_rows;
  check_int "no batch filtering without vectorization" 0
    m.Telemetry.batch_filtered;
  Telemetry.reset ();
  let vec = Connection.connect app in
  ignore (Connection.execute_query vec sql);
  let m = Telemetry.snapshot () in
  check_bool "vectorized run pushes batches" true (m.Telemetry.batch_batches > 0);
  check_bool "vectorized run carries rows" true (m.Telemetry.batch_rows > 0);
  check_bool "the filter dropped rows in-batch" true
    (m.Telemetry.batch_filtered > 0)

(* --------------------------------------------------------------- *)
(* Join-table reuse across invocations: repeated execution of the same
   plan over unchanged data skips the hash-table build (keyed on the
   physical identity of the cached scan); a data change breaks the
   key and forces a rebuild.                                         *)

let join_app () =
  let app = Artifact.application "JoinApp" in
  let t1 = Table.create "T1" [ Schema.column ~nullable:false "ID" Sql_type.Integer ] in
  let t2 = Table.create "T2" [ Schema.column ~nullable:false "REF" Sql_type.Integer ] in
  List.iter (fun i -> Table.insert t1 [ Value.Int i ]) [ 1; 2; 3; 4 ];
  List.iter (fun i -> Table.insert t2 [ Value.Int i ]) [ 2; 3; 3; 5 ];
  ignore (Artifact.import_physical_table app ~project:"P" t1);
  ignore (Artifact.import_physical_table app ~project:"P" t2);
  (app, t2)

let join_build_reused_until_data_changes () =
  let app, t2 = join_app () in
  let sql = "SELECT A.ID FROM T1 A, T2 B WHERE A.ID = B.REF" in
  with_telemetry @@ fun () ->
  let conn = Connection.connect ~translation_cache:false app in
  let count () =
    List.length
      (Result_set.to_rowset (Connection.execute_query conn sql)).Rowset.rows
  in
  check_int "cold join rows" 3 (count ());
  check_int "one build on the cold run" 1
    (Telemetry.value Telemetry.c_hash_join_builds);
  check_int "nothing to reuse yet" 0
    (Telemetry.value Telemetry.c_hash_join_reused);
  check_int "warm join rows" 3 (count ());
  check_int "warm run built nothing" 1
    (Telemetry.value Telemetry.c_hash_join_builds);
  check_int "warm run reused the table" 1
    (Telemetry.value Telemetry.c_hash_join_reused);
  (* a row insert moves the data revision: the scan cache re-fetches,
     the physical identity key breaks, and the join table is rebuilt *)
  Table.insert t2 [ Value.Int 1 ];
  check_int "post-insert join rows" 4 (count ());
  check_int "data change forced a rebuild" 2
    (Telemetry.value Telemetry.c_hash_join_builds);
  check_int "stale table not reused" 1
    (Telemetry.value Telemetry.c_hash_join_reused)

(* --------------------------------------------------------------- *)
(* Batch views under non-divisor sizes: Rowset.batches/iter_batches
   and the scan cache's memoized batched serve.                      *)

let rowset_batch_view () =
  let schema = [ Schema.column ~nullable:false "N" Sql_type.Integer ] in
  let rows = List.map (fun i -> [| Value.Int i |]) [ 1; 2; 3; 4; 5 ] in
  let rs = Rowset.make schema rows in
  let lengths size =
    List.map Array.length (Rowset.batches ~size rs)
  in
  Alcotest.(check (list int)) "non-divisor size leaves a short tail"
    [ 2; 2; 1 ] (lengths 2);
  Alcotest.(check (list int)) "oversized batch takes everything"
    [ 5 ] (lengths 7);
  Alcotest.(check (list int)) "size is clamped to at least 1"
    [ 1; 1; 1; 1; 1 ] (lengths 0);
  (* batching never reorders or drops rows *)
  let flattened =
    List.concat_map Array.to_list (Rowset.batches ~size:2 rs)
  in
  Alcotest.(check (list string)) "flattened batches preserve row order"
    [ "1"; "2"; "3"; "4"; "5" ]
    (List.map (fun r -> Value.to_display r.(0)) flattened);
  let seen = ref 0 in
  Rowset.iter_batches ~size:3 rs (fun b -> seen := !seen + Array.length b);
  check_int "iter_batches visits every row once" 5 !seen

let scan_cache_batched_serve () =
  let app = Artifact.application "A" in
  let cache = Scan_cache.create app in
  let items = List.init 10 (fun i -> Item.Atomic (Atomic.Integer i)) in
  Scan_cache.store cache "k" items;
  (match Scan_cache.find_batches cache "k" ~size:4 with
  | None -> Alcotest.fail "stored key must be served"
  | Some bs ->
    Alcotest.(check (list int)) "size-capped slices with a short tail"
      [ 4; 4; 2 ] (List.map Array.length bs);
    let served = List.concat_map Array.to_list bs in
    check_bool "batched serve preserves the items in order" true
      (List.for_all2 ( == ) items served);
    (* a second batched scan serves identical slices (off the entry's
       memoized array view) and counts as a cache hit like find *)
    (match Scan_cache.find_batches cache "k" ~size:4 with
    | Some bs' ->
      check_bool "repeat serve identical" true
        (List.for_all2 (fun a b -> Array.for_all2 ( == ) a b) bs bs')
    | None -> Alcotest.fail "repeat lookup must still hit"));
  check_int "batched lookups counted as hits" 2
    (Scan_cache.stats cache).Scan_cache.hits;
  check_bool "unknown key misses" true
    (Scan_cache.find_batches cache "nope" ~size:4 = None)

let suite =
  ( "vectorize",
    [ Helpers.case "battery agrees at batch size 1" (battery_at_size 1);
      Helpers.case "battery agrees at batch size 2" (battery_at_size 2);
      Helpers.case "battery agrees at batch size 7" (battery_at_size 7);
      Helpers.case "battery agrees at batch size 1024" (battery_at_size 1024);
      Helpers.case "paper examples agree at every edge size" paper_battery;
      Helpers.qcheck prop_vectorized_differential;
      Helpers.case "governors trip at batch boundaries"
        governors_under_vectorization;
      Helpers.case "batch fault falls back to the oracle"
        failpoint_falls_back_to_oracle;
      Helpers.case "mid-stream batch fault falls back"
        midstream_failpoint_falls_back;
      Helpers.case "batch counters respect the toggle"
        batch_counters_respect_toggle;
      Helpers.case "join build reused until data changes"
        join_build_reused_until_data_changes;
      Helpers.case "rowset batch view edges" rowset_batch_view;
      Helpers.case "scan cache batched serve" scan_cache_batched_serve ] )
