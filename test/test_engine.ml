(* Baseline SQL engine semantics (the differential oracle itself needs
   its SQL-92 corner cases pinned down). *)

module Engine = Aqua_sqlengine.Engine
module Value = Aqua_relational.Value

let app () = Helpers.demo_app ()
let rows sql = Helpers.engine_rows (app ()) sql
let check_rows = Helpers.check_rows

let null_semantics () =
  (* customer 5 has NULL TIER: excluded both by TIER=1 and NOT(TIER=1) *)
  let with_pred = rows "SELECT CUSTOMERID FROM CUSTOMERS WHERE TIER = 1" in
  let with_not = rows "SELECT CUSTOMERID FROM CUSTOMERS WHERE NOT (TIER = 1)" in
  let all = rows "SELECT CUSTOMERID FROM CUSTOMERS" in
  Alcotest.(check bool) "3VL excludes unknown from both" true
    (List.length with_pred + List.length with_not < List.length all)

let not_in_with_nulls () =
  (* TIER has a NULL: x NOT IN (nullable set) can never be TRUE unless
     the set is empty *)
  check_rows "not in over a set with NULL" []
    (rows
       "SELECT CUSTOMERID FROM CUSTOMERS WHERE 99 NOT IN (SELECT TIER FROM CUSTOMERS)")

let aggregates_over_empty () =
  check_rows "count star" [ [ "0" ] ]
    (rows "SELECT COUNT(*) FROM CUSTOMERS WHERE CUSTOMERID > 1000");
  check_rows "sum is null" [ [ "NULL" ] ]
    (rows "SELECT SUM(TIER) FROM CUSTOMERS WHERE CUSTOMERID > 1000");
  check_rows "avg is null" [ [ "NULL" ] ]
    (rows "SELECT AVG(TIER) FROM CUSTOMERS WHERE CUSTOMERID > 1000");
  check_rows "min is null" [ [ "NULL" ] ]
    (rows "SELECT MIN(TIER) FROM CUSTOMERS WHERE CUSTOMERID > 1000")

let count_ignores_nulls () =
  (* TIER is NULL for customer 5 *)
  check_rows "count column vs count star" [ [ "6"; "5" ] ]
    (rows "SELECT COUNT(*), COUNT(TIER) FROM CUSTOMERS")

let group_by_null_key () =
  (* NULL city groups as its own group *)
  let groups = rows "SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY" in
  Alcotest.(check bool) "null group present" true
    (List.exists (fun r -> List.hd r = "NULL") groups)

let having_filters_groups () =
  check_rows "having" [ [ "Austin"; "2" ]; [ "Boston"; "2" ] ]
    (rows
       "SELECT CITY, COUNT(*) N FROM CUSTOMERS WHERE CITY IS NOT NULL GROUP \
        BY CITY HAVING COUNT(*) > 1 ORDER BY CITY")

let distinct_treats_nulls_equal () =
  let cities = rows "SELECT DISTINCT TIER FROM CUSTOMERS ORDER BY 1" in
  Alcotest.(check int) "one NULL row only" 4 (List.length cities)

let intersect_all_counts () =
  check_rows "intersect all multiplicity" [ [ "x" ]; [ "x" ] ]
    (Helpers.engine_rows (app ())
       "SELECT 'x' FROM CUSTOMERS WHERE CUSTOMERID <= 3 INTERSECT ALL SELECT 'x' FROM CUSTOMERS WHERE CUSTOMERID <= 2")

let except_all_counts () =
  check_rows "except all multiplicity" [ [ "x" ] ]
    (Helpers.engine_rows (app ())
       "SELECT 'x' FROM CUSTOMERS WHERE CUSTOMERID <= 3 EXCEPT ALL SELECT 'x' FROM CUSTOMERS WHERE CUSTOMERID <= 2")

let order_by_nulls_first () =
  let tiers = rows "SELECT TIER FROM CUSTOMERS ORDER BY TIER" in
  Alcotest.(check string) "null sorts first" "NULL" (List.hd (List.hd tiers))

let correlated_subquery () =
  check_rows "correlated count"
    [ [ "1"; "2" ]; [ "2"; "1" ]; [ "3"; "1" ]; [ "4"; "0" ]; [ "5"; "0" ]; [ "6"; "1" ] ]
    (rows
       "SELECT C.CUSTOMERID, (SELECT COUNT(*) FROM PAYMENTS P WHERE P.CUSTID \
        = C.CUSTOMERID) FROM CUSTOMERS C ORDER BY 1")

let scalar_subquery_cardinality () =
  match
    Helpers.engine_rows (app ())
      "SELECT (SELECT CUSTOMERID FROM CUSTOMERS) FROM CUSTOMERS"
  with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "scalar subquery with many rows accepted"

let prepared_parameters () =
  let env = Engine.env_of_application (app ()) in
  let stmt =
    Aqua_sql.Parser.parse "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?"
  in
  let rs = Engine.execute_with_params env stmt [| Value.Int 2 |] in
  Alcotest.(check int) "one row" 1 (List.length rs.Aqua_relational.Rowset.rows)

let division_by_zero () =
  match rows "SELECT CUSTOMERID / 0 FROM CUSTOMERS" with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "division by zero accepted"

let like_semantics () =
  check_rows "escape" [ [ "1" ] ]
    (Helpers.engine_rows (app ())
       "SELECT 1 FROM CUSTOMERS WHERE 'a%b' LIKE 'a!%b' ESCAPE '!' AND CUSTOMERID = 1");
  check_rows "underscore" [ [ "1" ] ]
    (Helpers.engine_rows (app ())
       "SELECT 1 FROM CUSTOMERS WHERE 'abc' LIKE 'a_c' AND CUSTOMERID = 1")

let suite =
  ( "engine",
    [ Helpers.case "3VL null semantics" null_semantics;
      Helpers.case "NOT IN with NULLs" not_in_with_nulls;
      Helpers.case "aggregates over empty input" aggregates_over_empty;
      Helpers.case "COUNT ignores NULLs" count_ignores_nulls;
      Helpers.case "GROUP BY groups NULL keys" group_by_null_key;
      Helpers.case "HAVING filters groups" having_filters_groups;
      Helpers.case "DISTINCT treats NULLs equal" distinct_treats_nulls_equal;
      Helpers.case "INTERSECT ALL multiplicity" intersect_all_counts;
      Helpers.case "EXCEPT ALL multiplicity" except_all_counts;
      Helpers.case "ORDER BY sorts NULLs first" order_by_nulls_first;
      Helpers.case "correlated subquery" correlated_subquery;
      Helpers.case "scalar subquery cardinality" scalar_subquery_cardinality;
      Helpers.case "prepared parameters" prepared_parameters;
      Helpers.case "division by zero" division_by_zero;
      Helpers.case "LIKE semantics" like_semantics ] )
