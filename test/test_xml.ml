(* XML node model, serializer and parser tests. *)

module Node = Aqua_xml.Node
module Item = Aqua_xml.Item
module Serialize = Aqua_xml.Serialize
module Parse = Aqua_xml.Parse
module Atomic = Aqua_xml.Atomic

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let el = Node.element
let tx = Node.text

let escaping () =
  check_str "text" "a&amp;b&lt;c&gt;d" (Serialize.escape_text "a&b<c>d");
  check_str "attr" "say &quot;hi&quot;" (Serialize.escape_attr "say \"hi\"")

let serialization () =
  let node =
    el "ROW" ~attrs:[ ("id", "1") ]
      [ el "NAME" [ tx "Acme & Co" ]; el "EMPTY" [] ]
  in
  check_str "compact"
    "<ROW id=\"1\"><NAME>Acme &amp; Co</NAME><EMPTY/></ROW>"
    (Serialize.node_to_string node);
  let pretty = Serialize.node_to_string ~indent:true node in
  check_bool "indented has newlines" true (String.contains pretty '\n')

let sequence_serialization () =
  let seq =
    [ Item.Atomic (Atomic.Integer 1);
      Item.Atomic (Atomic.String "x");
      Item.Node (el "E" []) ]
  in
  check_str "atomics joined by space" "1 x<E/>"
    (Serialize.sequence_to_string seq)

let parse_roundtrip () =
  let node =
    el "ns0:CUSTOMERS"
      [ el "CUSTOMERID" [ tx "55" ];
        el "CUSTOMERNAME" [ tx "Joe <\"quoted\"> & Sons" ] ]
  in
  let text = Serialize.node_to_string node in
  let back = Parse.node_of_string text in
  check_bool "round trip" true (Node.equal node back)

let parse_details () =
  let n = Parse.node_of_string "<a x='1' y=\"two\">mid<b/>tail</a>" in
  (match n with
  | Node.Element e ->
    check_str "name" "a" e.Node.name;
    Alcotest.(check (list (pair string string)))
      "attrs"
      [ ("x", "1"); ("y", "two") ]
      e.Node.attrs;
    Alcotest.(check int) "children" 3 (List.length e.Node.children)
  | Node.Text _ -> Alcotest.fail "expected element");
  let entities = Parse.node_of_string "<a>&lt;&amp;&gt;&#65;&#x42;</a>" in
  check_str "entities" "<&>AB" (Node.string_value entities);
  let decl = Parse.node_of_string "<?xml version=\"1.0\"?><!-- c --><a/>" in
  check_bool "xml decl and comment skipped" true
    (Node.name_of decl = Some "a")

let parse_forest () =
  let nodes = Parse.nodes_of_string "<a/><b/><c>t</c>" in
  Alcotest.(check int) "three roots" 3 (List.length nodes)

let parse_errors () =
  let bad s =
    match Parse.node_of_string s with
    | exception Parse.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed XML: %s" s
  in
  bad "<a><b></a></b>";
  bad "<a";
  bad "<a>&bogus;</a>";
  bad "<a x=1/>";
  bad ""

let local_names () =
  check_str "prefixed" "CUSTOMERS" (Node.local_name "ns0:CUSTOMERS");
  check_str "plain" "CUSTOMERS" (Node.local_name "CUSTOMERS")

let string_value () =
  check_str "concatenated descendants" "ab"
    (Node.string_value (el "r" [ el "x" [ tx "a" ]; tx "b" ]))

(* random tree generator for the round-trip property *)
let gen_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "row"; "ns0:e"; "X_1" ] in
  let text = oneofl [ "plain"; "a&b"; "<tag>"; "\"q\""; "x y z"; "" ] in
  fix
    (fun self depth ->
      if depth = 0 then map Node.text text
      else
        frequency
          [ (2, map Node.text text);
            ( 3,
              map2
                (fun n children -> Node.element n children)
                name
                (list_size (int_bound 3) (self (depth - 1))) ) ])
    3

let arb_tree =
  QCheck.make gen_tree ~print:(fun n -> Serialize.node_to_string n)

let prop_roundtrip =
  QCheck.Test.make ~name:"serialize/parse round-trip" ~count:300 arb_tree
    (fun node ->
      (* wrap in a root so a bare text node is a valid document; the
         round-trip target is the normalized tree, since adjacent and
         empty text nodes are not representable in serialized XML *)
      let root = Node.normalize (Node.element "root" [ node ]) in
      let text = Serialize.node_to_string root in
      Node.equal root (Parse.node_of_string text))

let suite =
  ( "xml",
    [ Helpers.case "escaping" escaping;
      Helpers.case "serialization" serialization;
      Helpers.case "sequence serialization" sequence_serialization;
      Helpers.case "parse round-trip" parse_roundtrip;
      Helpers.case "parse details" parse_details;
      Helpers.case "parse forest" parse_forest;
      Helpers.case "parse errors" parse_errors;
      Helpers.case "local names" local_names;
      Helpers.case "string value" string_value;
      Helpers.qcheck prop_roundtrip ] )
