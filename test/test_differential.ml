(* The correctness heart of the reproduction: every SQL statement,
   executed through translate -> DSP server -> result transport, must
   return the same multiset of rows as the baseline SQL engine
   (DESIGN.md section 3).  A fixed battery pins down every feature
   class; a qcheck property sweeps randomly generated statements. *)

module Connection = Aqua_driver.Connection
module Rowset = Aqua_relational.Rowset
module Engine = Aqua_sqlengine.Engine

let battery =
  [ (* projections and predicates *)
    "SELECT * FROM CUSTOMERS";
    "SELECT CUSTOMERS.* FROM CUSTOMERS";
    "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID > 2";
    "SELECT DISTINCT CITY FROM CUSTOMERS";
    "SELECT DISTINCT CITY, TIER FROM CUSTOMERS";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE CITY IS NULL";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE CITY IS NOT NULL";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE NOT (TIER = 1)";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE NOT (TIER = 1 OR CITY = 'Austin')";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE NOT (TIER IS NULL)";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID BETWEEN 2 AND 4";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID NOT BETWEEN 2 AND 4";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CITY IN ('Austin', 'Boston')";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CITY NOT IN ('Austin', 'Boston')";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CITY LIKE '%o%'";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CITY NOT LIKE 'A%'";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME LIKE '%a_t%'";
    (* arithmetic, functions, case, cast *)
    "SELECT CUSTOMERID * 2 + 1 D FROM CUSTOMERS";
    "SELECT -CUSTOMERID N FROM CUSTOMERS";
    "SELECT CUSTOMERID / 4 Q FROM CUSTOMERS";
    "SELECT UPPER(CITY) U, LOWER(CUSTOMERNAME) L FROM CUSTOMERS";
    "SELECT LENGTH(CUSTOMERNAME) L FROM CUSTOMERS";
    "SELECT SUBSTRING(CUSTOMERNAME FROM 2 FOR 4) S FROM CUSTOMERS";
    "SELECT POSITION('e' IN CUSTOMERNAME) P FROM CUSTOMERS";
    "SELECT TRIM(CUSTOMERNAME) T FROM CUSTOMERS";
    "SELECT ABS(TIER - 2) A FROM CUSTOMERS WHERE TIER IS NOT NULL";
    "SELECT MOD(CUSTOMERID, 3) M FROM CUSTOMERS";
    "SELECT CUSTOMERNAME || '!' E FROM CUSTOMERS";
    "SELECT CITY || CUSTOMERNAME X FROM CUSTOMERS";
    "SELECT COALESCE(CITY, 'none') C FROM CUSTOMERS";
    "SELECT NULLIF(CITY, 'Austin') C FROM CUSTOMERS";
    "SELECT CASE WHEN TIER = 1 THEN 'g' WHEN TIER = 2 THEN 's' ELSE 'b' END T FROM CUSTOMERS";
    "SELECT CASE TIER WHEN 1 THEN 'g' END T FROM CUSTOMERS";
    "SELECT CAST(CUSTOMERID AS VARCHAR(10)) S FROM CUSTOMERS";
    "SELECT CAST(TIER AS DOUBLE PRECISION) D FROM CUSTOMERS";
    "SELECT EXTRACT(YEAR FROM PAYDATE) Y, EXTRACT(MONTH FROM PAYDATE) M FROM PAYMENTS";
    "SELECT PAYMENTID FROM PAYMENTS WHERE PAYDATE > DATE '2005-02-01'";
    (* joins *)
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID";
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C INNER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C RIGHT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C FULL OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID AND P.PAYMENT > 100";
    "SELECT * FROM CUSTOMERS C CROSS JOIN PAYMENTS P";
    "SELECT X.CUSTOMERNAME, Y.ORDERID, Z.PAYMENT FROM CUSTOMERS X INNER JOIN PO_CUSTOMERS Y ON X.CUSTOMERID = Y.CUSTOMERID LEFT OUTER JOIN PAYMENTS Z ON X.CUSTOMERID = Z.CUSTID";
    "SELECT A.CUSTOMERID FROM CUSTOMERS A INNER JOIN CUSTOMERS B ON A.CUSTOMERID = B.CUSTOMERID";
    "SELECT C.CUSTOMERNAME FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID WHERE P.PAYMENT IS NULL";
    "SELECT * FROM (CUSTOMERS C INNER JOIN PO_CUSTOMERS O ON C.CUSTOMERID = O.CUSTOMERID) LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
    (* grouping *)
    "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY";
    "SELECT CITY, COUNT(TIER) N FROM CUSTOMERS GROUP BY CITY";
    "SELECT CITY, SUM(TIER) S, MIN(CUSTOMERID) MN, MAX(CUSTOMERID) MX, AVG(TIER) A FROM CUSTOMERS GROUP BY CITY";
    "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1";
    "SELECT TIER, CITY, COUNT(*) N FROM CUSTOMERS GROUP BY TIER, CITY";
    "SELECT COUNT(*) FROM CUSTOMERS";
    "SELECT COUNT(*), SUM(TIER), AVG(TIER), MIN(CITY), MAX(CITY) FROM CUSTOMERS";
    "SELECT COUNT(*) FROM CUSTOMERS WHERE CUSTOMERID > 999";
    "SELECT SUM(TIER) FROM CUSTOMERS WHERE CUSTOMERID > 999";
    "SELECT COUNT(DISTINCT CITY) FROM CUSTOMERS";
    "SELECT SUM(DISTINCT TIER) FROM CUSTOMERS";
    "SELECT C.CITY, COUNT(*) N, SUM(P.PAYMENT) T FROM CUSTOMERS C INNER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID GROUP BY C.CITY";
    "SELECT SUM(CUSTOMERID + TIER) S FROM CUSTOMERS";
    "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY HAVING MIN(CUSTOMERID) > 1";
    (* subqueries *)
    "SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 3";
    "SELECT T.CITY, T.N FROM (SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY) AS T WHERE T.N > 1";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTOMERID FROM PO_CUSTOMERS)";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID NOT IN (SELECT CUSTOMERID FROM PO_CUSTOMERS)";
    "SELECT CUSTOMERNAME FROM CUSTOMERS C WHERE EXISTS (SELECT 1 FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID AND P.PAYMENT > 100)";
    "SELECT CUSTOMERNAME FROM CUSTOMERS C WHERE NOT EXISTS (SELECT 1 FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID)";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE TIER >= ALL (SELECT TIER FROM CUSTOMERS WHERE TIER IS NOT NULL)";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE TIER < ANY (SELECT TIER FROM CUSTOMERS WHERE CITY = 'Boston')";
    "SELECT (SELECT COUNT(*) FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID) NPAY FROM CUSTOMERS C";
    "SELECT CUSTOMERID FROM CUSTOMERS C WHERE (SELECT COUNT(*) FROM PO_CUSTOMERS O WHERE O.CUSTOMERID = C.CUSTOMERID) > 1";
    (* set operations *)
    "SELECT CITY FROM CUSTOMERS WHERE TIER = 1 UNION SELECT CITY FROM CUSTOMERS WHERE TIER = 2";
    "SELECT CITY FROM CUSTOMERS UNION ALL SELECT CITY FROM CUSTOMERS";
    "SELECT CITY FROM CUSTOMERS WHERE TIER = 1 INTERSECT SELECT CITY FROM CUSTOMERS WHERE TIER = 2";
    "SELECT CITY FROM CUSTOMERS EXCEPT SELECT CITY FROM CUSTOMERS WHERE TIER = 1";
    "SELECT CITY FROM CUSTOMERS INTERSECT ALL SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID > 1";
    "SELECT CITY FROM CUSTOMERS EXCEPT ALL SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID > 3";
    "SELECT TIER FROM CUSTOMERS UNION SELECT TIER FROM CUSTOMERS";
    "SELECT CUSTOMERID, CITY FROM CUSTOMERS WHERE TIER = 1 UNION SELECT CUSTOMERID, CITY FROM CUSTOMERS WHERE CITY = 'Austin'";
    (* every function-map entry in one sweep *)
    "SELECT CONCAT(CUSTOMERNAME, 'x') A, UCASE(CUSTOMERNAME) B, LCASE(CUSTOMERNAME) C FROM CUSTOMERS";
    "SELECT CHAR_LENGTH(CUSTOMERNAME) A, CHARACTER_LENGTH(CUSTOMERNAME) B FROM CUSTOMERS";
    "SELECT SUBSTR(CUSTOMERNAME, 3) A, SUBSTRING(CUSTOMERNAME, 2, 2) B FROM CUSTOMERS";
    "SELECT LOCATE('e', CUSTOMERNAME) A, POSITION('e' IN CUSTOMERNAME) B FROM CUSTOMERS";
    "SELECT LTRIM(CUSTOMERNAME) A, RTRIM(CUSTOMERNAME) B, TRIM(CUSTOMERNAME) C FROM CUSTOMERS";
    "SELECT ABS(TIER - 2) A FROM CUSTOMERS";
    "SELECT FLOOR(PAYMENT) B, CEILING(PAYMENT) C, CEIL(PAYMENT) D, ROUND(PAYMENT) E FROM PAYMENTS";
    "SELECT MOD(CUSTOMERID, 4) A FROM CUSTOMERS";
    "SELECT EXTRACT(YEAR FROM PAYDATE) A, EXTRACT(MONTH FROM PAYDATE) B, EXTRACT(DAY FROM PAYDATE) C FROM PAYMENTS";
    "SELECT COALESCE(CITY, CUSTOMERNAME, 'zz') A, NULLIF(TIER, 1) B FROM CUSTOMERS";
    (* implicit single group + having; aggregates in odd spots *)
    "SELECT COUNT(*) FROM CUSTOMERS HAVING COUNT(*) > 0";
    "SELECT SUM(TIER) FROM CUSTOMERS HAVING COUNT(*) > 100";
    "SELECT CITY FROM CUSTOMERS GROUP BY CITY HAVING SUM(TIER) IS NOT NULL";
    "SELECT CITY, MAX(CUSTOMERNAME) M FROM CUSTOMERS GROUP BY CITY HAVING MAX(CUSTOMERNAME) LIKE '%s%'";
    "SELECT TIER, COUNT(*) N FROM CUSTOMERS GROUP BY TIER HAVING TIER IS NULL OR COUNT(*) > 1";
    (* row value constructors (desugared by the parser) *)
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE (CITY, TIER) = ('Austin', 2)";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE (CUSTOMERID, TIER) < (4, 2)";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE (CITY, TIER) IN (('Austin', 2), ('Boston', 1))";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE (CITY, TIER) NOT IN (('Austin', 2))";
    (* order by *)
    (* deeper nesting and mixed shapes *)
    "SELECT A.X FROM (SELECT B.Y X FROM (SELECT CUSTOMERID Y FROM CUSTOMERS WHERE TIER = 1) AS B) AS A";
    "SELECT D.CITY, D.N FROM (SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY) AS D INNER JOIN CUSTOMERS C ON D.CITY = C.CITY WHERE C.TIER = 2";
    "SELECT C.CUSTOMERNAME FROM CUSTOMERS C WHERE C.CUSTOMERID IN (SELECT P.CUSTID FROM PAYMENTS P WHERE P.PAYMENT > (SELECT AVG(PAYMENT) FROM PAYMENTS))";
    "SELECT C.CUSTOMERNAME, (SELECT MAX(P.PAYMENT) FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID) MAXPAY FROM CUSTOMERS C WHERE C.TIER IS NOT NULL";
    "SELECT X.CITY FROM CUSTOMERS X CROSS JOIN PO_CUSTOMERS Y WHERE X.CUSTOMERID = Y.CUSTOMERID AND Y.AMOUNT > 50";
    "SELECT L.CUSTOMERNAME, R.CUSTOMERNAME FROM CUSTOMERS L INNER JOIN CUSTOMERS R ON L.TIER = R.TIER WHERE L.CUSTOMERID < R.CUSTOMERID";
    "SELECT C.CUSTOMERNAME FROM CUSTOMERS C LEFT OUTER JOIN (SELECT CUSTID FROM PAYMENTS WHERE PAYMENT > 500) BIG ON C.CUSTOMERID = BIG.CUSTID WHERE BIG.CUSTID IS NOT NULL";
    "SELECT T.S FROM (SELECT CITY || '!' S FROM CUSTOMERS WHERE CITY IS NOT NULL) AS T WHERE T.S LIKE 'A%'";
    "SELECT COUNT(*) FROM (SELECT DISTINCT CITY, TIER FROM CUSTOMERS) AS D";
    "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) >= ALL (SELECT COUNT(*) FROM PAYMENTS WHERE PAYMENT < 0)";
    "SELECT C.CITY FROM CUSTOMERS C GROUP BY C.CITY HAVING SUM(C.TIER) > 1 AND COUNT(TIER) < 5";
    "SELECT CASE WHEN CITY IS NULL THEN 'none' ELSE CITY END C, COUNT(*) FROM CUSTOMERS GROUP BY CITY";
    "SELECT CUSTOMERID, CASE WHEN TIER > 1 AND CITY LIKE '%o%' THEN 'x' END T FROM CUSTOMERS";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE (TIER = 1 OR TIER = 2) AND NOT (CITY = 'Austin' AND TIER = 2)";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE NOT (CUSTOMERID NOT IN (1, 2, 3))";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE NOT (CUSTOMERNAME NOT LIKE '%a%')";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE NOT (TIER IS NOT NULL)";
    "SELECT P1.PAYMENTID FROM PAYMENTS P1 WHERE P1.PAYMENT <> ALL (SELECT P2.PAYMENT FROM PAYMENTS P2 WHERE P2.PAYMENTID <> P1.PAYMENTID)";
    "SELECT CITY FROM CUSTOMERS WHERE TIER = 1 UNION ALL SELECT CITY FROM CUSTOMERS WHERE TIER = 2 UNION SELECT CITY FROM CUSTOMERS WHERE TIER = 3";
    "SELECT CITY FROM CUSTOMERS EXCEPT (SELECT CITY FROM CUSTOMERS WHERE TIER = 1 INTERSECT SELECT CITY FROM CUSTOMERS WHERE TIER = 2)";
    "SELECT CUSTOMERID + TIER S FROM CUSTOMERS WHERE CUSTOMERID + TIER > 4";
    "SELECT -SUM(TIER) NEG FROM CUSTOMERS WHERE TIER IS NOT NULL";
    "SELECT SUBSTRING(CUSTOMERNAME, 2) TAIL FROM CUSTOMERS";
    "SELECT LENGTH(CITY || CUSTOMERNAME) L FROM CUSTOMERS WHERE CITY IS NOT NULL";
    "SELECT CUSTOMERID FROM CUSTOMERS WHERE MOD(CUSTOMERID, 2) = 0 AND CUSTOMERID BETWEEN 1 AND 100";
    "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME LIKE '%a!%%' ESCAPE '!'";
    "SELECT CUSTOMERNAME, TIER FROM CUSTOMERS ORDER BY TIER DESC, CUSTOMERNAME";
    "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY 1 DESC";
    "SELECT CUSTOMERID + 0 S FROM CUSTOMERS ORDER BY CUSTOMERID DESC";
    "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY LENGTH(CUSTOMERNAME), CUSTOMERNAME";
    "SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY DESC";
    "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY ORDER BY N DESC, CITY";
    "SELECT CITY FROM CUSTOMERS UNION SELECT CITY FROM CUSTOMERS ORDER BY 1";
    "SELECT TIER FROM CUSTOMERS ORDER BY TIER";
    (* qualified column keys over grouped/distinct queries resolve to
       their output columns *)
    "SELECT C.CITY, SUM(P.PAYMENT) T FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID GROUP BY C.CITY ORDER BY C.CITY";
    "SELECT DISTINCT C.CITY FROM CUSTOMERS C ORDER BY C.CITY DESC";
    "SELECT C.TIER, COUNT(*) N FROM CUSTOMERS C WHERE C.TIER IS NOT NULL GROUP BY C.TIER ORDER BY C.TIER DESC, N" ]

let sort_keys_of (stmt : Aqua_sql.Ast.statement) cols =
  (* indexes of ORDER BY keys that map to output columns *)
  List.filter_map
    (fun (o : Aqua_sql.Ast.order_item) ->
      match o.Aqua_sql.Ast.key with
      | Aqua_sql.Ast.Ord_position i -> Some (i - 1)
      | Aqua_sql.Ast.Ord_expr (Aqua_sql.Ast.Column { qualifier = None; name; _ }) ->
        let rec go i = function
          | [] -> None
          | (c : Aqua_relational.Schema.column) :: rest ->
            if String.uppercase_ascii c.Aqua_relational.Schema.name
               = String.uppercase_ascii name
            then Some i
            else go (i + 1) rest
        in
        go 0 cols
      | Aqua_sql.Ast.Ord_expr _ -> None)
    stmt.Aqua_sql.Ast.order_by

let run_one app engine_env conn sql =
  let via_driver =
    Aqua_driver.Result_set.to_rowset (Connection.execute_query conn sql)
  in
  let direct = Engine.execute_sql engine_env sql in
  (match Rowset.diff_summary direct via_driver with
  | None -> ()
  | Some msg ->
    Alcotest.failf "mismatch on %s: %s\n-- engine:\n%s\n-- driver:\n%s" sql msg
      (Rowset.to_string direct)
      (Rowset.to_string via_driver));
  (* when ORDER BY keys are output columns, check the ordering too *)
  let stmt = Aqua_sql.Parser.parse sql in
  let keys = sort_keys_of stmt direct.Rowset.schema in
  if keys <> [] && not (Rowset.sorted_under_order_by ~keys direct via_driver)
  then
    Alcotest.failf "ordering mismatch on %s\n-- engine:\n%s\n-- driver:\n%s" sql
      (Rowset.to_string direct)
      (Rowset.to_string via_driver);
  ignore app

let battery_case transport () =
  let app = Helpers.demo_app () in
  let engine_env = Engine.env_of_application app in
  let conn = Connection.connect ~transport app in
  List.iter (run_one app engine_env conn) battery

(* --------------------------------------------------------------- *)
(* Randomized differential sweep                                    *)

let random_app = lazy (
  Aqua_workload.Datagen.application
    { Aqua_workload.Datagen.customers = 12; orders = 25; lines_per_order = 2;
      payments = 18 })

let prop_differential =
  let app = Lazy.force random_app in
  let tables = Aqua_dsp.Metadata.list_tables app in
  let engine_env = Engine.env_of_application app in
  let conn = Connection.connect ~transport:Connection.Text app in
  QCheck.Test.make ~name:"random statements agree with the oracle" ~count:250
    QCheck.(
      make
        (fun rand -> Aqua_workload.Querygen.generate rand tables)
        ~print:Aqua_sql.Pretty.statement_to_string)
    (fun stmt ->
      let sql = Aqua_sql.Pretty.statement_to_string stmt in
      let via_driver =
        Aqua_driver.Result_set.to_rowset (Connection.execute_query conn sql)
      in
      let direct = Engine.execute_sql engine_env sql in
      match Rowset.diff_summary direct via_driver with
      | None ->
        let keys = sort_keys_of stmt direct.Rowset.schema in
        keys = [] || Rowset.sorted_under_order_by ~keys direct via_driver
      | Some msg ->
        QCheck.Test.fail_reportf "%s\non: %s\n-- engine:\n%s\n-- driver:\n%s"
          msg sql
          (Rowset.to_string direct)
          (Rowset.to_string via_driver))

let prop_differential_reporting =
  let app = Lazy.force random_app in
  let tables = Aqua_dsp.Metadata.list_tables app in
  let engine_env = Engine.env_of_application app in
  let conn = Connection.connect ~transport:Connection.Xml app in
  QCheck.Test.make ~name:"reporting workload agrees (XML transport)" ~count:100
    QCheck.(
      make
        (fun rand ->
          Aqua_workload.Querygen.generate
            ~profile:Aqua_workload.Querygen.reporting_profile rand tables)
        ~print:Aqua_sql.Pretty.statement_to_string)
    (fun stmt ->
      let sql = Aqua_sql.Pretty.statement_to_string stmt in
      let via_driver =
        Aqua_driver.Result_set.to_rowset (Connection.execute_query conn sql)
      in
      let direct = Engine.execute_sql engine_env sql in
      Rowset.diff_summary direct via_driver = None)

let naive_style_agrees () =
  (* the naive emission style must stay correct (it is the ablation
     baseline of bench P5) *)
  let app = Helpers.demo_app () in
  let env = Aqua_translator.Semantic.env_of_application app in
  let srv = Aqua_dsp.Server.create app in
  let engine_env = Engine.env_of_application app in
  List.iter
    (fun sql ->
      let t =
        Aqua_translator.Translator.translate
          ~style:Aqua_translator.Generate.Naive env sql
      in
      let rs =
        Aqua_driver.Result_set.of_xml_sequence t.Aqua_translator.Translator.columns
          (Aqua_dsp.Server.execute srv t.Aqua_translator.Translator.xquery)
      in
      let via = Aqua_driver.Result_set.to_rowset rs in
      let direct = Engine.execute_sql engine_env sql in
      match Rowset.diff_summary direct via with
      | None -> ()
      | Some msg -> Alcotest.failf "naive style mismatch on %s: %s" sql msg)
    [ "SELECT * FROM CUSTOMERS WHERE CITY LIKE 'A%'";
      "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY";
      "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID" ]

let suite =
  ( "differential",
    [ Helpers.case "battery via text transport" (battery_case Connection.Text);
      Helpers.case "battery via xml transport" (battery_case Connection.Xml);
      Helpers.case "naive style agrees" naive_style_agrees;
      Helpers.qcheck prop_differential;
      Helpers.qcheck prop_differential_reporting ] )
