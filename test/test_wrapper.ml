(* Section-4 text transport: encoding and decoding. *)

module Wrapper = Aqua_translator.Wrapper
module Outcol = Aqua_translator.Outcol
module Sql_type = Aqua_relational.Sql_type
module Functions = Aqua_xqeval.Functions

let cols n =
  List.init n (fun i ->
      Outcol.make
        ~label:(Printf.sprintf "C%d" i)
        ~element:(Printf.sprintf "C%d" i)
        ~ty:(Sql_type.Varchar None) ~nullable:true)

let check_rows = Alcotest.(check (list (list (option string))))

(* Encode rows the way the generated wrapper query does. *)
let encode rows =
  String.concat ""
    (List.map
       (fun row ->
         String.concat ""
           (List.mapi
              (fun i cell ->
                let sep = if i = 0 then ">" else "<" in
                let body =
                  match cell with
                  | None -> "\x00"
                  | Some s -> Functions.xml_escape s
                in
                sep ^ body)
              row))
       rows)

let roundtrip rows ncols () =
  let text = encode rows in
  check_rows "decoded" rows (Wrapper.decode ~columns:(cols ncols) text)

let nasty_rows =
  [ [ Some "plain"; Some "" ];
    [ Some "a<b>c&d"; None ];
    [ Some ">starts"; Some "<mid<" ];
    [ Some "new\nline"; Some "tab\there" ];
    [ None; None ];
    [ Some "\x01control"; Some "d\x1fe" ] ]

let empty_result () =
  check_rows "no rows" [] (Wrapper.decode ~columns:(cols 2) "")

let decode_errors () =
  (match Wrapper.decode ~columns:(cols 2) "junk" with
  | exception Wrapper.Decode_error _ -> ()
  | _ -> Alcotest.fail "missing row prefix accepted");
  match Wrapper.decode ~columns:(cols 2) ">only-one-cell" with
  | exception Wrapper.Decode_error _ -> ()
  | _ -> Alcotest.fail "wrong arity accepted"

let unescape_cases () =
  Alcotest.(check string) "entities" "<&>" (Wrapper.unescape "&lt;&amp;&gt;");
  Alcotest.(check string) "char ref" "\x01" (Wrapper.unescape "&#1;");
  match Wrapper.unescape "&bogus;" with
  | exception Wrapper.Decode_error _ -> ()
  | _ -> Alcotest.fail "bad entity accepted"

(* property: arbitrary strings and NULLs survive the round-trip *)
let arb_cell =
  QCheck.(
    option
      (string_gen_of_size (Gen.int_bound 12) (Gen.char_range '\x00' '\x7f')))

let prop_roundtrip =
  QCheck.Test.make ~name:"text transport round-trip" ~count:500
    QCheck.(list_of_size (Gen.int_range 1 6) (pair arb_cell arb_cell))
    (fun rows ->
      let rows = List.map (fun (a, b) -> [ a; b ]) rows in
      Wrapper.decode ~columns:(cols 2) (encode rows) = rows)

(* end-to-end: driver text transport equals xml transport on nasty data *)
let transports_agree_on_nasty_data () =
  let module Table = Aqua_relational.Table in
  let module Schema = Aqua_relational.Schema in
  let module Value = Aqua_relational.Value in
  let module Artifact = Aqua_dsp.Artifact in
  let t =
    Table.create "NASTY"
      [ Schema.column ~nullable:false "ID" Sql_type.Integer;
        Schema.column "S" (Sql_type.Varchar None) ]
  in
  List.iteri
    (fun i cell ->
      Table.insert t
        [ Value.Int i; (match cell with None -> Value.Null | Some s -> Value.Str s) ])
    [ Some "a<b>&c"; None; Some ""; Some ">x<"; Some "q\"uote'"; Some "\ttab" ];
  let app = Artifact.application "NastyApp" in
  ignore (Artifact.import_physical_table app ~project:"P" t);
  let sql = "SELECT ID, S FROM NASTY ORDER BY ID" in
  let via_text = Helpers.driver_rows ~transport:Aqua_driver.Connection.Text app sql in
  let via_xml = Helpers.driver_rows ~transport:Aqua_driver.Connection.Xml app sql in
  Helpers.check_rows "transports agree" via_xml via_text

let suite =
  ( "wrapper",
    [ Helpers.case "round-trip simple" (roundtrip [ [ Some "a"; Some "b" ] ] 2);
      Helpers.case "round-trip nasty" (roundtrip nasty_rows 2);
      Helpers.case "empty result" empty_result;
      Helpers.case "decode errors" decode_errors;
      Helpers.case "unescape" unescape_cases;
      Helpers.qcheck prop_roundtrip;
      Helpers.case "transports agree on nasty data" transports_agree_on_nasty_data ] )
