(* SQL-92 lexer/parser/pretty-printer tests. *)

module A = Aqua_sql.Ast
module Parser = Aqua_sql.Parser
module Pretty = Aqua_sql.Pretty
module Lexer = Aqua_sql.Lexer

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let parse = Parser.parse
let pp s = Pretty.statement_to_string (parse s)

(* parse -> print -> parse must be a fixpoint of printing *)
let roundtrip sql =
  let once = pp sql in
  let twice = Pretty.statement_to_string (parse once) in
  check_str ("fixpoint: " ^ sql) once twice

let accepted_statements =
  [ "SELECT * FROM T";
    "SELECT a, b AS bb, t.c FROM s.t";
    "SELECT DISTINCT a FROM t WHERE a > 1 AND b < 2 OR NOT c = 3";
    "SELECT * FROM a, b, c WHERE a.x = b.y";
    "SELECT * FROM a INNER JOIN b ON a.x = b.y LEFT OUTER JOIN c ON b.z = c.z";
    "SELECT * FROM a CROSS JOIN b";
    "SELECT * FROM (SELECT x FROM t) AS d WHERE d.x IS NOT NULL";
    "SELECT x FROM t WHERE x BETWEEN 1 AND 10";
    "SELECT x FROM t WHERE x NOT BETWEEN 1 AND 10";
    "SELECT x FROM t WHERE name LIKE 'A%' ESCAPE '!'";
    "SELECT x FROM t WHERE x IN (1, 2, 3)";
    "SELECT x FROM t WHERE x NOT IN (SELECT y FROM u)";
    "SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)";
    "SELECT x FROM t WHERE x > ALL (SELECT y FROM u)";
    "SELECT x FROM t WHERE x = ANY (SELECT y FROM u)";
    "SELECT x FROM t WHERE x = SOME (SELECT y FROM u)";
    "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), AVG(c), MIN(d), MAX(e) FROM t GROUP BY f HAVING COUNT(*) > 2";
    "SELECT a FROM t ORDER BY 1 DESC, a ASC";
    "SELECT a FROM t UNION SELECT a FROM u";
    "SELECT a FROM t UNION ALL SELECT a FROM u INTERSECT SELECT a FROM v";
    "SELECT a FROM t EXCEPT ALL SELECT a FROM u";
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t";
    "SELECT CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' END FROM t";
    "SELECT CAST(a AS DECIMAL(10,2)), CAST(b AS VARCHAR(5)) FROM t";
    "SELECT -a + 2 * (b - 1) / 4 FROM t";
    "SELECT a || b || 'x' FROM t";
    "SELECT * FROM t WHERE d = DATE '2004-01-02'";
    "SELECT * FROM t WHERE ts = TIMESTAMP '2004-01-02 10:00:00'";
    "SELECT * FROM t WHERE tm = TIME '10:00:00'";
    "SELECT SUBSTRING(a FROM 2 FOR 3) FROM t";
    "SELECT SUBSTRING(a, 2, 3) FROM t";
    "SELECT POSITION('x' IN a) FROM t";
    "SELECT EXTRACT(YEAR FROM d) FROM t";
    "SELECT TRIM(LEADING FROM a), TRIM(a) FROM t";
    "SELECT \"Quoted Table\".\"Weird Col\" FROM \"Quoted Table\"";
    "SELECT t.* FROM t";
    "SELECT a FROM cat.sch.t";
    "SELECT a FROM t WHERE x = ? AND y > ?";
    "SELECT * FROM (a INNER JOIN b ON a.x = b.x) LEFT OUTER JOIN c ON b.y = c.y" ]

let parses_and_roundtrips () = List.iter roundtrip accepted_statements

let rejected_statements =
  [ "";
    "SELECT";
    "SELECT FROM t";
    "SELECT * FROM";
    "SELECT * FROM t WHERE";
    "SELECT * FROM t GROUP";
    "SELECT a b c FROM t";
    "SELECT * FROM t ORDER BY";
    "SELECT * FROM (SELECT a FROM t)";  (* derived table needs alias *)
    "SELECT * FROM t WHERE a NOT = 1";
    "SELECT * FROM t; SELECT * FROM u";
    "SELECT CASE END FROM t";
    "SELECT * FROM t WHERE a LIKE";
    "SELECT 'unterminated FROM t";
    "INSERT INTO t VALUES (1)" ]

let rejects_bad_syntax () =
  List.iter
    (fun sql ->
      match parse sql with
      | _ -> Alcotest.failf "accepted bad SQL: %s" sql
      | exception Parser.Parse_error _ -> ())
    rejected_statements

let precedence () =
  (* a + b * c parses as a + (b * c) *)
  (match Parser.parse_expression "a + b * c" with
  | A.Arith (A.Add, A.Column _, A.Arith (A.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "multiplication should bind tighter");
  (* NOT a = 1 OR b = 2  ==  (NOT (a = 1)) OR (b = 2) *)
  (match Parser.parse_expression "NOT a = 1 OR b = 2" with
  | A.Or (A.Not (A.Cmp _), A.Cmp _) -> ()
  | _ -> Alcotest.fail "NOT should bind tighter than OR");
  (* AND binds tighter than OR *)
  (match Parser.parse_expression "a = 1 OR b = 2 AND c = 3" with
  | A.Or (A.Cmp _, A.And _) -> ()
  | _ -> Alcotest.fail "AND should bind tighter than OR")

let row_value_constructors () =
  (* desugared at parse time; verify the shapes *)
  (match Parser.parse_expression "(a, b) = (1, 2)" with
  | A.And (A.Cmp (A.Eq, _, _), A.Cmp (A.Eq, _, _)) -> ()
  | _ -> Alcotest.fail "row equality shape");
  (match Parser.parse_expression "(a, b) < (1, 2)" with
  | A.Or (A.Cmp (A.Lt, _, _), A.And (A.Cmp (A.Eq, _, _), A.Cmp (A.Lt, _, _)))
    ->
    ()
  | _ -> Alcotest.fail "row lexicographic shape");
  (match Parser.parse_expression "(a, b) <= (1, 2)" with
  | A.Or (A.Cmp (A.Lt, _, _), A.And (A.Cmp (A.Eq, _, _), A.Cmp (A.Le, _, _)))
    ->
    ()
  | _ -> Alcotest.fail "row <= keeps the final column non-strict");
  (match Parser.parse_expression "(a, b) IN ((1, 2), (3, 4))" with
  | A.Or (A.And _, A.And _) -> ()
  | _ -> Alcotest.fail "row IN shape");
  (match Parser.parse_expression "(a, b) <> (1, 2)" with
  | A.Not (A.And _) -> ()
  | _ -> Alcotest.fail "row inequality shape");
  (* degree mismatch is rejected *)
  (match Parser.parse_expression "(a, b) = (1, 2, 3)" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "degree mismatch accepted");
  (* plain parenthesized expressions still parse, with parameters *)
  match parse "SELECT a FROM t WHERE (x + ?) > ? AND (y) = 1" with
  | stmt -> (
    match stmt.A.body with
    | A.Spec { A.where = Some w; _ } ->
      let params acc (e : A.expr) =
        A.fold_expr
          (fun acc e -> match e with A.Param n -> n :: acc | _ -> acc)
          acc e
      in
      Alcotest.(check (list int)) "params renumber cleanly after backtrack"
        [ 1; 2 ]
        (List.sort compare (params [] w))
    | _ -> Alcotest.fail "expected where")

let parameters_numbered () =
  let stmt = parse "SELECT a FROM t WHERE x = ? AND y IN (?, ?)" in
  let params acc (e : A.expr) =
    A.fold_expr
      (fun acc e -> match e with A.Param n -> n :: acc | _ -> acc)
      acc e
  in
  match stmt.A.body with
  | A.Spec { A.where = Some w; _ } ->
    Alcotest.(check (list int)) "param numbers" [ 1; 2; 3 ]
      (List.sort compare (params [] w))
  | _ -> Alcotest.fail "expected a where clause"

let keywords_case_insensitive () =
  roundtrip "select A from T where B like 'x%' order by 1";
  check_bool "parses" true
    (match parse "SeLeCt a FrOm t" with _ -> true)

let string_escapes () =
  match parse "SELECT * FROM t WHERE a = 'it''s'" with
  | { A.body = A.Spec { A.where = Some (A.Cmp (A.Eq, _, A.Lit (A.L_string s))); _ }; _ } ->
    check_str "doubled quote" "it's" s
  | _ -> Alcotest.fail "unexpected shape"

let comments_skipped () =
  let stmt = parse "SELECT a -- trailing\nFROM t /* block\ncomment */ WHERE a = 1" in
  match stmt.A.body with
  | A.Spec { A.where = Some _; _ } -> ()
  | _ -> Alcotest.fail "comments broke parsing"

let lexer_positions () =
  let toks = Lexer.tokenize "SELECT\n  a" in
  match Array.to_list toks with
  | [ t1; t2; _eof ] ->
    check_int "first line" 1 t1.Lexer.pos.A.line;
    check_int "second line" 2 t2.Lexer.pos.A.line;
    check_int "second col" 3 t2.Lexer.pos.A.col
  | _ -> Alcotest.fail "unexpected token count"

(* property: generated queries print -> parse -> print to a fixpoint *)
let prop_roundtrip =
  let app = Helpers.demo_app () in
  let tables = Aqua_dsp.Metadata.list_tables app in
  QCheck.Test.make ~name:"generated SQL print/parse fixpoint" ~count:300
    QCheck.(make (fun rand -> Aqua_workload.Querygen.generate rand tables)
              ~print:Pretty.statement_to_string)
    (fun stmt ->
      let once = Pretty.statement_to_string stmt in
      let twice = Pretty.statement_to_string (parse once) in
      once = twice)

let suite =
  ( "sql-parser",
    [ Helpers.case "accepted statements round-trip" parses_and_roundtrips;
      Helpers.case "rejects bad syntax" rejects_bad_syntax;
      Helpers.case "operator precedence" precedence;
      Helpers.case "parameters numbered" parameters_numbered;
      Helpers.case "row value constructors" row_value_constructors;
      Helpers.case "keyword case insensitivity" keywords_case_insensitive;
      Helpers.case "string escapes" string_escapes;
      Helpers.case "comments" comments_skipped;
      Helpers.case "lexer positions" lexer_positions;
      Helpers.qcheck prop_roundtrip ] )
