(* The compiling evaluator must agree with the reference interpreter
   on everything the translator emits. *)

module X = Aqua_xquery.Ast
module Compile = Aqua_xqeval.Compile
module Eval = Aqua_xqeval.Eval
module Item = Aqua_xml.Item
module Atomic = Aqua_xml.Atomic
module Server = Aqua_dsp.Server
module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let same_sequences a b =
  List.length a = List.length b && List.for_all2 Item.equal a b

let eval_both ?(bindings = []) expr =
  let ctx =
    List.fold_left
      (fun ctx (n, v) -> Eval.bind ctx n v)
      (Eval.context ()) bindings
  in
  let interpreted = Eval.eval ctx expr in
  let compiled =
    Compile.run ~bindings
      (Compile.compile_expr ~vars:(List.map fst bindings) expr)
  in
  (interpreted, compiled)

let assert_agree ?bindings expr =
  let a, b = eval_both ?bindings expr in
  if not (same_sequences a b) then
    Alcotest.failf "interpreter and compiler disagree on %s"
      (Aqua_xquery.Pretty.expr_to_string expr)

let expression_agreement () =
  List.iter
    (fun src -> assert_agree (Aqua_xquery.Parser.parse_expr src))
    [ "1 + 2 * 3";
      "7 div 2";
      "(1, 2, 3)";
      "fn:sum((1, 2, 3))";
      "fn:string-join((\"a\", \"b\"), \"-\")";
      "if (1 = 1) then \"y\" else \"n\"";
      "some $x in (1, 2, 3) satisfies $x > 2";
      "every $x in (1, 2, 3) satisfies $x > 0";
      "for $x in (3, 1, 2) order by $x descending return $x";
      "for $x in (1, 2, 3) where $x != 2 let $y := $x * 10 return $y";
      "for $x in (1, 1, 2, 2, 2) group $x as $p by $x as $k return \
       fn:concat($k, \":\", fn:string(fn:count($p)))";
      "<R><A>{1 + 1}</A><B>x</B></R>";
      "fn:count((<a/>, <b/>)[2])" ]

let flwor_with_barriers () =
  (* order-by inside nested flwors, group with downstream clauses *)
  assert_agree
    (Aqua_xquery.Parser.parse_expr
       "for $x in (5, 3, 4, 3) group $x as $p by $x as $k order by $k \
        descending return <G><K>{$k}</K><N>{fn:count($p)}</N></G>");
  assert_agree
    (Aqua_xquery.Parser.parse_expr
       "for $x in (1, 2) return for $y in (9, 8) order by $y return \
        ($x * 10) + $y")

let compile_errors () =
  (match Compile.compile_expr (X.var "nope") with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "unknown variable compiled");
  (match Compile.compile_expr (X.call "fn:bogus" []) with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "unknown function compiled");
  (* variables dropped by group-by are compile errors *)
  match
    Compile.compile_expr
      (Aqua_xquery.Parser.parse_expr
         "for $x in (1, 2) let $y := $x group $x as $p by $x as $k return $y")
  with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "dropped binding compiled"

let external_bindings () =
  let compiled =
    Compile.compile_expr ~vars:[ "param1" ]
      (Aqua_xquery.Parser.parse_expr "$param1 + 1")
  in
  check_bool "bound run" true
    (Compile.run ~bindings:[ ("param1", Item.of_int 41) ] compiled
    = Item.of_int 42);
  match Compile.run compiled with
  | exception Aqua_xqeval.Error.Dynamic_error _ -> ()
  | _ -> Alcotest.fail "unbound external ran"

(* every translated battery query executes identically through
   Server.execute (interpreter) and Server.prepare (compiler) *)
let server_agreement () =
  let app = Helpers.demo_app () in
  let env = Semantic.env_of_application app in
  let srv = Server.create app in
  List.iter
    (fun sql ->
      let t = Translator.translate env sql in
      let interpreted = Server.execute srv t.Translator.xquery in
      let prepared = Server.prepare srv t.Translator.xquery in
      let compiled = Server.execute_prepared prepared in
      if not (same_sequences interpreted compiled) then
        Alcotest.failf "server paths disagree on %s" sql;
      (* compiled queries are reusable *)
      check_bool "re-execution stable" true
        (same_sequences compiled (Server.execute_prepared prepared)))
    [ "SELECT * FROM CUSTOMERS";
      "SELECT CUSTOMERID ID FROM CUSTOMERS WHERE CUSTOMERID > 2 ORDER BY 1 DESC";
      "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
      "SELECT CITY, COUNT(*) N, SUM(TIER) S FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1 ORDER BY N DESC";
      "SELECT CITY FROM CUSTOMERS WHERE TIER = 1 UNION SELECT CITY FROM CUSTOMERS WHERE TIER = 2";
      "SELECT CITY FROM CUSTOMERS EXCEPT ALL SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID > 3";
      "SELECT DISTINCT CITY, TIER FROM CUSTOMERS";
      "SELECT CUSTOMERNAME FROM CUSTOMERS C WHERE EXISTS (SELECT 1 FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID)";
      "SELECT (SELECT COUNT(*) FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID) N FROM CUSTOMERS C";
      "SELECT COUNT(*), SUM(TIER), MIN(CITY) FROM CUSTOMERS" ]

let prepared_parameters_via_server () =
  let app = Helpers.demo_app () in
  let env = Semantic.env_of_application app in
  let srv = Server.create app in
  let t =
    Translator.translate env
      "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?"
  in
  let prepared = Server.prepare ~vars:[ "param1" ] srv t.Translator.xquery in
  let run i =
    Server.execute_prepared ~bindings:[ ("param1", Item.of_int i) ] prepared
  in
  let count seq =
    List.length
      (List.concat_map
         (fun item ->
           match item with
           | Item.Node n -> Aqua_xml.Node.children_elements n
           | Item.Atomic _ -> [])
         seq)
  in
  check_int "one row for id 1" 1 (count (run 1));
  check_int "no rows for id 99" 0 (count (run 99))

(* property: random statements agree between the two evaluators *)
let prop_agreement =
  let app =
    Aqua_workload.Datagen.application
      { Aqua_workload.Datagen.customers = 10; orders = 20; lines_per_order = 2;
        payments = 12 }
  in
  let tables = Aqua_dsp.Metadata.list_tables app in
  let env = Semantic.env_of_application app in
  let srv = Server.create app in
  QCheck.Test.make ~name:"compiler agrees with interpreter" ~count:150
    QCheck.(
      make
        (fun rand -> Aqua_workload.Querygen.generate rand tables)
        ~print:Aqua_sql.Pretty.statement_to_string)
    (fun stmt ->
      let t = Translator.translate_statement env stmt in
      let interpreted = Server.execute srv t.Translator.xquery in
      let compiled =
        Server.execute_prepared (Server.prepare srv t.Translator.xquery)
      in
      same_sequences interpreted compiled)

let suite =
  ( "compile",
    [ Helpers.case "expression agreement" expression_agreement;
      Helpers.case "flwor barriers" flwor_with_barriers;
      Helpers.case "compile errors" compile_errors;
      Helpers.case "external bindings" external_bindings;
      Helpers.case "server agreement" server_agreement;
      Helpers.case "prepared parameters" prepared_parameters_via_server;
      Helpers.qcheck prop_agreement ] )
