(* Translator stages: semantic validation errors, result schema
   computation, structural properties of the generated XQuery. *)

module Errors = Aqua_translator.Errors
module Outcol = Aqua_translator.Outcol
module Sql_type = Aqua_relational.Sql_type
module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic
module Generate = Aqua_translator.Generate
module X = Aqua_xquery.Ast

let app () = Helpers.demo_app ()

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let semantic_errors () =
  let a = app () in
  Helpers.expect_error ~kind:Errors.Unknown_table a "SELECT * FROM NOPE";
  Helpers.expect_error ~kind:Errors.Unknown_column a
    "SELECT NOPE FROM CUSTOMERS";
  Helpers.expect_error ~kind:Errors.Unknown_column a
    "SELECT X.CUSTOMERID FROM CUSTOMERS C";
  Helpers.expect_error ~kind:Errors.Ambiguous_column a
    "SELECT CUSTOMERID FROM CUSTOMERS, PO_CUSTOMERS";
  (* the paper's grouping example: SELECT EMPNO ... GROUP BY EMPNAME *)
  Helpers.expect_error ~kind:Errors.Grouping a
    "SELECT CUSTOMERID FROM CUSTOMERS GROUP BY CUSTOMERNAME";
  Helpers.expect_error ~kind:Errors.Grouping a
    "SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING TIER > 1";
  Helpers.expect_error ~kind:Errors.Grouping a
    "SELECT * FROM CUSTOMERS WHERE COUNT(*) > 1";
  Helpers.expect_error ~kind:Errors.Grouping a
    "SELECT * FROM CUSTOMERS C, CUSTOMERS C";
  Helpers.expect_error ~kind:Errors.Type_mismatch a
    "SELECT CITY FROM CUSTOMERS UNION SELECT CITY, TIER FROM CUSTOMERS";
  Helpers.expect_error ~kind:Errors.Type_mismatch a
    "SELECT * FROM CUSTOMERS WHERE CUSTOMERNAME > 5";
  Helpers.expect_error ~kind:Errors.Type_mismatch a
    "SELECT CUSTOMERNAME + 1 FROM CUSTOMERS";
  Helpers.expect_error ~kind:Errors.Unknown_column a
    "SELECT CUSTOMERID FROM CUSTOMERS ORDER BY 9";
  Helpers.expect_error ~kind:Errors.Cardinality a
    "SELECT * FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTOMERID, TIER FROM CUSTOMERS)";
  Helpers.expect_error ~kind:Errors.Unsupported a
    "SELECT BOGUSFN(CUSTOMERID) FROM CUSTOMERS";
  (* correlation works, sibling derived tables must not see each other *)
  Helpers.expect_error ~kind:Errors.Unknown_column a
    "SELECT * FROM CUSTOMERS C, (SELECT CUSTOMERID FROM PO_CUSTOMERS WHERE CUSTOMERID = C.CUSTOMERID) D"

let syntax_errors_carry_positions () =
  match Translator.translate (Semantic.env_of_application (app ())) "SELECT FROM" with
  | _ -> Alcotest.fail "expected syntax error"
  | exception Errors.Error e ->
    check_bool "kind" true (e.Errors.kind = Errors.Syntax);
    check_bool "position" true (e.Errors.pos <> None)

let result_schema () =
  let t = Helpers.translate (app ()) "SELECT CUSTOMERID ID, CITY FROM CUSTOMERS" in
  (match t.Translator.columns with
  | [ c1; c2 ] ->
    check_str "label 1" "ID" c1.Outcol.label;
    check_bool "type 1" true (c1.Outcol.ty = Sql_type.Integer);
    check_bool "not nullable" false c1.Outcol.nullable;
    check_str "label 2" "CITY" c2.Outcol.label;
    check_bool "nullable" true c2.Outcol.nullable
  | _ -> Alcotest.fail "expected two columns");
  (* outer join makes the inner side nullable *)
  let t2 =
    Helpers.translate (app ())
      "SELECT P.PAYMENT FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID"
  in
  (match t2.Translator.columns with
  | [ c ] -> check_bool "outer-join nullability" true c.Outcol.nullable
  | _ -> Alcotest.fail "expected one column");
  (* aggregates *)
  let t3 =
    Helpers.translate (app ())
      "SELECT COUNT(*) C, SUM(TIER) S, AVG(TIER) A FROM CUSTOMERS"
  in
  (match t3.Translator.columns with
  | [ c; s; a ] ->
    check_bool "count not null" false c.Outcol.nullable;
    check_bool "sum nullable" true s.Outcol.nullable;
    check_bool "avg nullable" true a.Outcol.nullable;
    check_bool "count integer" true (c.Outcol.ty = Sql_type.Integer)
  | _ -> Alcotest.fail "expected three columns");
  (* wildcard expansion covers all columns of all tables *)
  let t4 = Helpers.translate (app ()) "SELECT * FROM CUSTOMERS, PAYMENTS" in
  check_int "star arity" 8 (List.length t4.Translator.columns)

let structure_checks () =
  let text = Helpers.xquery_text (app ()) "SELECT * FROM CUSTOMERS" in
  Helpers.assert_contains ~needle:"import schema namespace ns0" text;
  Helpers.assert_contains ~needle:"ld:TestDataServices/CUSTOMERS" text;
  Helpers.assert_contains ~needle:"<RECORDSET>" text;
  Helpers.assert_contains ~needle:"for $var1FR0 in ns0:CUSTOMERS()" text;
  Helpers.assert_contains ~needle:"<RECORD>" text;
  Helpers.assert_contains ~needle:"fn:data($var1FR0/CUSTOMERID)" text;
  (* one import per distinct table even when referenced twice *)
  let text2 =
    Helpers.xquery_text (app ())
      "SELECT A.CUSTOMERID FROM CUSTOMERS A, CUSTOMERS B WHERE A.CUSTOMERID = B.CUSTOMERID"
  in
  check_bool "single import" false
    (Helpers.contains ~needle:"ns1" text2)

let literal_casts () =
  let text =
    Helpers.xquery_text (app ())
      "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID > 10"
  in
  Helpers.assert_contains ~needle:"xs:int(10)" text

let parameters_become_variables () =
  let text =
    Helpers.xquery_text (app ())
      "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID = ? AND CUSTOMERNAME = ?"
  in
  Helpers.assert_contains ~needle:"$param1" text;
  Helpers.assert_contains ~needle:"$param2" text

let naive_vs_patterned () =
  let env = Semantic.env_of_application (app ()) in
  let sql = "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERNAME LIKE 'A%'" in
  let patterned =
    Aqua_xquery.Pretty.query_to_string
      (Translator.translate ~style:Generate.Patterned env sql).Translator.xquery
  in
  let naive =
    Aqua_xquery.Pretty.query_to_string
      (Translator.translate ~style:Generate.Naive env sql).Translator.xquery
  in
  Helpers.assert_contains ~needle:"fn:starts-with" patterned;
  Helpers.assert_contains ~needle:"fn-bea:like" naive;
  (* naive style guards even non-nullable columns *)
  Helpers.assert_contains ~needle:"fn:empty($var1FR0/CUSTOMERID)" naive

let order_by_inside_flwor () =
  let text =
    Helpers.xquery_text (app ())
      "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID DESC"
  in
  Helpers.assert_contains ~needle:"order by" text;
  Helpers.assert_contains ~needle:"descending" text

let group_by_uses_bea_extension () =
  let text =
    Helpers.xquery_text (app ())
      "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY"
  in
  Helpers.assert_contains ~needle:"group $" text;
  Helpers.assert_contains ~needle:" by " text;
  Helpers.assert_contains ~needle:"fn:count($" text

let outer_join_pattern () =
  let text =
    Helpers.xquery_text (app ())
      "SELECT CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT FROM CUSTOMERS LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"
  in
  (* the Example-10 shape: a let-bound RECORDSET and an emptiness test *)
  Helpers.assert_contains ~needle:"let $tempvar" text;
  Helpers.assert_contains ~needle:"fn:empty" text;
  Helpers.assert_contains ~needle:"CUSTOMERS.CUSTOMERID" text;
  Helpers.assert_contains ~needle:"PAYMENTS.PAYMENT" text

let explain_tree () =
  (* the Figure-3 query shape: three tables, an inner join, two
     subqueries, a union — plus the Figure-4 context numbering *)
  let env = Semantic.env_of_application (app ()) in
  let text =
    Aqua_translator.Explain.statement env
      (Aqua_sql.Parser.parse
         "SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS WHERE \
          TIER IN (SELECT TIER FROM CUSTOMERS)) AS INFO INNER JOIN PAYMENTS \
          ON INFO.ID = PAYMENTS.CUSTID UNION SELECT ORDERID FROM \
          PO_CUSTOMERS ORDER BY 1")
  in
  List.iter
    (fun needle -> Helpers.assert_contains ~needle text)
    [ "CTX0 (outermost scope)";
      "RSN set operation: UNION";
      "CTX1: query";
      "RSN join (INNER JOIN)";
      "RSN derived table AS INFO";
      "CTX2: query";
      "RSN subquery (in WHERE)";
      "CTX3: query";
      "RSN table PAYMENTS";
      "CTX4: query";
      "order by: 1" ]

let translate_result_api () =
  let env = Semantic.env_of_application (app ()) in
  (match Translator.translate_result env "SELECT * FROM CUSTOMERS" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Errors.to_string e));
  match Translator.translate_result env "SELECT * FROM NOPE" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> check_bool "kind" true (e.Errors.kind = Errors.Unknown_table)

let suite =
  ( "translator",
    [ Helpers.case "semantic errors" semantic_errors;
      Helpers.case "syntax errors carry positions" syntax_errors_carry_positions;
      Helpers.case "result schema" result_schema;
      Helpers.case "structural checks" structure_checks;
      Helpers.case "literal casts" literal_casts;
      Helpers.case "parameters" parameters_become_variables;
      Helpers.case "naive vs patterned styles" naive_vs_patterned;
      Helpers.case "order by inside flwor" order_by_inside_flwor;
      Helpers.case "group-by uses BEA extension" group_by_uses_bea_extension;
      Helpers.case "outer join pattern" outer_join_pattern;
      Helpers.case "explain tree (figures 3-4)" explain_tree;
      Helpers.case "translate_result api" translate_result_api ] )
