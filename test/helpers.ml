(* Shared fixtures and assertions for the suite. *)

module Value = Aqua_relational.Value
module Rowset = Aqua_relational.Rowset
module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Artifact = Aqua_dsp.Artifact
module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic
module Errors = Aqua_translator.Errors
module Engine = Aqua_sqlengine.Engine
module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set

let demo_app () = Aqua_workload.Demo.build ()

(* Runs a SQL statement through the DSP driver path (given transport)
   and through the baseline engine; fails the test on divergence. *)
let assert_differential ?(transport = Connection.Text) app sql =
  let conn = Connection.connect ~transport app in
  let via_driver = Result_set.to_rowset (Connection.execute_query conn sql) in
  let direct = Engine.execute_sql (Engine.env_of_application app) sql in
  match Rowset.diff_summary direct via_driver with
  | None -> ()
  | Some msg ->
    Alcotest.failf "differential mismatch on %s: %s\n-- engine:\n%s\n-- driver:\n%s"
      sql msg (Rowset.to_string direct) (Rowset.to_string via_driver)

(* Runs through the engine only and returns displayed cells. *)
let engine_rows app sql =
  let rs = Engine.execute_sql (Engine.env_of_application app) sql in
  List.map
    (fun row -> List.map Value.to_display (Array.to_list row))
    rs.Rowset.rows

let driver_rows ?(transport = Connection.Text) app sql =
  let conn = Connection.connect ~transport app in
  let rs = Result_set.to_rowset (Connection.execute_query conn sql) in
  List.map
    (fun row -> List.map Value.to_display (Array.to_list row))
    rs.Rowset.rows

let translate app sql =
  Translator.translate (Semantic.env_of_application app) sql

let xquery_text app sql = Translator.to_string (translate app sql)

let expect_error ?kind app sql =
  match Translator.translate (Semantic.env_of_application app) sql with
  | _ -> Alcotest.failf "expected a translation error for: %s" sql
  | exception Errors.Error e -> (
    match kind with
    | None -> ()
    | Some k ->
      if e.Errors.kind <> k then
        Alcotest.failf "expected %s but got %s for: %s"
          (Errors.kind_to_string k) (Errors.to_string e) sql)

let check_rows = Alcotest.(check (list (list string)))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let assert_contains ~needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "expected to find %S in:\n%s" needle haystack

let case name f = Alcotest.test_case name `Quick f

(* Every property-based test routes through here so the whole suite is
   byte-reproducible: one seed (default 42, override with QCHECK_SEED)
   drives all generators.  qcheck-alcotest's default is
   [Random.self_init], which makes failures unreproducible in CI. *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 42

let () = Printf.eprintf "qcheck seed: %d (override with QCHECK_SEED)\n%!" qcheck_seed

let qcheck cell =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    cell
