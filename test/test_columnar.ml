(* The columnar (struct-of-arrays) batch engine against its two
   oracles (DESIGN.md section 16): the row-snapshot batch engine
   ([~columnar:false], PR 6) and the tuple-at-a-time interpreter
   ([~vectorize:false]).  The columnar layout must be observationally
   identical to both at every edge batch size — including NULL-heavy
   aggregation over LEFT OUTER JOIN, empty groups and non-kernelizable
   group shapes — while governors still trip at batch boundaries,
   batch faults still degrade gracefully, the columnar counters stay
   silent with the layout off, and required-column pruning is visible
   in the optimizer's plan notes. *)

module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Rowset = Aqua_relational.Rowset
module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Artifact = Aqua_dsp.Artifact
module Scan_cache = Aqua_dsp.Scan_cache
module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item
module Batch = Aqua_xqeval.Batch
module Join_table = Aqua_xqeval.Join_table
module Kernels = Aqua_xqeval.Kernels
module Optimize = Aqua_xqeval.Optimize
module Budget = Aqua_resilience.Budget
module Failpoint = Aqua_resilience.Failpoint
module Sqlstate = Aqua_resilience.Sqlstate
module Telemetry = Aqua_core.Telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let edge_sizes = [ 1; 2; 7; 1024 ]

let with_batch_size n f =
  let prev = Batch.size () in
  Batch.set_size n;
  Fun.protect ~finally:(fun () -> Batch.set_size prev) f

let with_failpoints ?seed spec f =
  Failpoint.arm ?seed spec;
  Fun.protect ~finally:Failpoint.disarm f

let with_telemetry f =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) f

let run conn sql =
  match Result_set.to_rowset (Connection.execute_query conn sql) with
  | rs -> Ok rs
  | exception e -> Error (Printexc.to_string e)

let agree ~what sql col oracle =
  match (col, oracle) with
  | Ok c, Ok o -> (
    match Rowset.diff_summary o c with
    | None -> ()
    | Some msg ->
      Alcotest.failf "%s diverged on %s: %s\n-- oracle:\n%s\n-- columnar:\n%s"
        what sql msg (Rowset.to_string o) (Rowset.to_string c))
  | Error _, Error _ -> ()
  | Ok _, Error e ->
    Alcotest.failf "%s: oracle raised (%s) but columnar succeeded on %s" what e
      sql
  | Error e, Ok _ ->
    Alcotest.failf "%s: columnar raised (%s) but oracle succeeded on %s" what e
      sql

(* Three-way: the columnar engine against the row-snapshot batch
   oracle AND the tuple-at-a-time interpreter. *)
let agree3 ~what sql col batched row =
  agree ~what:(what ^ " (vs batched)") sql col batched;
  agree ~what:(what ^ " (vs row)") sql col row

(* --------------------------------------------------------------- *)
(* Fixed batteries at every edge batch size.                        *)

let battery_at_size size () =
  let app = Helpers.demo_app () in
  let col = Connection.connect app in
  let batched = Connection.connect ~columnar:false app in
  let row = Connection.connect ~vectorize:false app in
  with_batch_size size @@ fun () ->
  List.iter
    (fun sql ->
      agree3 ~what:(Printf.sprintf "battery@%d" size) sql (run col sql)
        (run batched sql) (run row sql))
    Test_differential.battery

(* Aggregation shapes the kernel path must cover: every kernel kind,
   the SUM-over-NULL fusion via LEFT OUTER JOIN (groups whose slices
   hold only empty payment columns), groups keyed by a nullable
   column, empty group sets after an always-false filter, and
   post-aggregation ORDER BY over kernel outputs. *)
let agg_queries =
  [ "SELECT C.CUSTOMERID, COUNT(*) N FROM CUSTOMERS C GROUP BY C.CUSTOMERID";
    "SELECT P.CUSTID, COUNT(*) N, SUM(P.PAYMENT) S, AVG(P.PAYMENT) A, \
     MIN(P.PAYMENT) MN, MAX(P.PAYMENT) MX FROM PAYMENTS P GROUP BY P.CUSTID";
    "SELECT C.CUSTOMERID, COUNT(P.PAYMENTID) N, SUM(P.PAYMENT) S FROM \
     CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID \
     GROUP BY C.CUSTOMERID";
    "SELECT C.CITY, COUNT(*) N, MIN(C.TIER) MN, MAX(C.TIER) MX FROM \
     CUSTOMERS C GROUP BY C.CITY";
    "SELECT O.STATUS, COUNT(*) N, SUM(O.AMOUNT) S FROM PO_CUSTOMERS O \
     GROUP BY O.STATUS ORDER BY O.STATUS";
    "SELECT P.CUSTID, COUNT(*) N, SUM(P.PAYMENT) S FROM PAYMENTS P \
     WHERE P.PAYMENT > 100000 GROUP BY P.CUSTID";
    "SELECT C.TIER, AVG(C.CUSTOMERID) A FROM CUSTOMERS C GROUP BY C.TIER";
    "SELECT C.CITY, MAX(C.CUSTOMERNAME) MX FROM CUSTOMERS C GROUP BY C.CITY" ]

let aggregation_battery () =
  let app = Helpers.demo_app () in
  let col = Connection.connect app in
  let batched = Connection.connect ~columnar:false app in
  let row = Connection.connect ~vectorize:false app in
  List.iter
    (fun size ->
      with_batch_size size @@ fun () ->
      List.iter
        (fun sql ->
          agree3 ~what:(Printf.sprintf "agg@%d" size) sql (run col sql)
            (run batched sql) (run row sql))
        agg_queries)
    edge_sizes

(* --------------------------------------------------------------- *)
(* Randomized differential sweep, columnar vs both oracles.          *)

let bench_app = lazy (
  Aqua_workload.Datagen.application
    { Aqua_workload.Datagen.customers = 12; orders = 25; lines_per_order = 2;
      payments = 18 })

let prop_columnar_differential =
  let app = Lazy.force bench_app in
  let tables = Aqua_dsp.Metadata.list_tables app in
  let col = Connection.connect app in
  let batched = Connection.connect ~columnar:false app in
  let row = Connection.connect ~vectorize:false app in
  QCheck.Test.make ~name:"random statements agree at every batch size"
    ~count:60
    QCheck.(
      make
        (fun rand -> Aqua_workload.Querygen.generate rand tables)
        ~print:Aqua_sql.Pretty.statement_to_string)
    (fun stmt ->
      let sql = Aqua_sql.Pretty.statement_to_string stmt in
      let expected_row = run row sql in
      List.iter
        (fun size ->
          with_batch_size size @@ fun () ->
          agree3 ~what:(Printf.sprintf "qcheck@%d" size) sql (run col sql)
            (run batched sql) expected_row)
        edge_sizes;
      true)

(* --------------------------------------------------------------- *)
(* Governors trip at batch boundaries under the columnar layout.     *)

let sqlstate_of_query conn sql =
  match Connection.execute_query conn sql with
  | exception Sqlstate.Error e -> e.Sqlstate.sqlstate
  | _ -> Alcotest.fail "expected the governor to trip"

let governors_under_columnar () =
  let app = Helpers.demo_app () in
  let sql =
    "SELECT P.CUSTID, SUM(P.PAYMENT) S FROM PAYMENTS P GROUP BY P.CUSTID"
  in
  List.iter
    (fun size ->
      with_batch_size size @@ fun () ->
      let fuel =
        Connection.connect ~limits:(Budget.limits ~max_fuel:10 ()) app
      in
      Alcotest.(check string)
        (Printf.sprintf "fuel governor @%d" size)
        "53000" (sqlstate_of_query fuel sql);
      let rows =
        Connection.connect
          ~limits:(Budget.limits ~max_rows:2 ())
          app
      in
      Alcotest.(check string)
        (Printf.sprintf "row governor @%d" size)
        "53400"
        (sqlstate_of_query rows "SELECT * FROM CUSTOMERS");
      let deadline =
        Connection.connect ~limits:(Budget.limits ~timeout_ms:0 ()) app
      in
      Alcotest.(check string)
        (Printf.sprintf "deadline probed at batch boundary @%d" size)
        "57014" (sqlstate_of_query deadline sql))
    [ 1; 7; 1024 ]

(* A batch fault at a boundary mid-aggregation degrades to the
   row-at-a-time rerun and still produces the oracle rows. *)
let midstream_failpoint_falls_back () =
  let app = Helpers.demo_app () in
  let sql =
    "SELECT P.CUSTID, COUNT(*) N, SUM(P.PAYMENT) S FROM PAYMENTS P \
     GROUP BY P.CUSTID"
  in
  let oracle =
    Aqua_sqlengine.Engine.execute_sql
      (Aqua_sqlengine.Engine.env_of_application app)
      sql
  in
  with_batch_size 2 @@ fun () ->
  with_telemetry @@ fun () ->
  with_failpoints "xqeval.batch=at(2)" @@ fun () ->
  let conn = Connection.connect app in
  let rs = Connection.execute_query conn sql in
  (match Rowset.diff_summary oracle (Result_set.to_rowset rs) with
  | None -> ()
  | Some msg -> Alcotest.failf "mid-stream fallback wrong rows: %s" msg);
  check_bool "the batch fault actually fired" true
    (Telemetry.value Telemetry.c_faults_injected >= 1)

(* --------------------------------------------------------------- *)
(* Counter hygiene, both directions: ~columnar:false moves the
   xqeval.batch.* counters but leaves xqeval.columnar.* untouched;
   the columnar default moves both families.                         *)

let columnar_counters_respect_toggle () =
  let app = Helpers.demo_app () in
  let sql =
    "SELECT P.CUSTID, SUM(P.PAYMENT) S FROM PAYMENTS P \
     WHERE P.PAYMENT > 50 GROUP BY P.CUSTID"
  in
  with_telemetry @@ fun () ->
  let batched = Connection.connect ~columnar:false app in
  ignore (Connection.execute_query batched sql);
  let m = Telemetry.snapshot () in
  check_bool "row-batch engine still pushes batches" true
    (m.Telemetry.batch_batches > 0);
  check_int "no columnar batches with the layout off" 0
    m.Telemetry.columnar_batches;
  check_int "no columnar rows with the layout off" 0 m.Telemetry.columnar_rows;
  check_int "no pruning with the layout off" 0
    m.Telemetry.columnar_pruned_columns;
  check_int "no kernel updates with the layout off" 0
    m.Telemetry.columnar_kernel_updates;
  Telemetry.reset ();
  let col = Connection.connect app in
  ignore (Connection.execute_query col sql);
  let m = Telemetry.snapshot () in
  check_bool "columnar run pushes columnar batches" true
    (m.Telemetry.columnar_batches > 0);
  check_bool "columnar run carries rows" true (m.Telemetry.columnar_rows > 0);
  check_int "columnar batches also count as batch traffic"
    m.Telemetry.columnar_batches m.Telemetry.batch_batches;
  check_int "columnar rows also count as batch rows" m.Telemetry.columnar_rows
    m.Telemetry.batch_rows;
  check_bool "the aggregation ran through kernels" true
    (m.Telemetry.columnar_kernel_updates > 0);
  check_bool "the where filter dropped rows in-batch" true
    (m.Telemetry.batch_filtered > 0)

(* --------------------------------------------------------------- *)
(* Pruning goldens: the optimizer report names the columnar pipeline
   shape — kernels selected per group clause, columns carried vs
   pruned per expander — and drops the lines with the layout off.    *)

let pruning_notes_golden () =
  let app = Helpers.demo_app () in
  let notes sql ~columnar =
    let t = Helpers.translate app sql in
    let _, report =
      Optimize.query ~columnar t.Aqua_translator.Translator.xquery
    in
    String.concat "\n" report.Optimize.notes
  in
  let agg =
    "SELECT P.CUSTID, COUNT(*) N, SUM(P.PAYMENT) S FROM PAYMENTS P \
     GROUP BY P.CUSTID"
  in
  let s = notes agg ~columnar:true in
  Helpers.assert_contains ~needle:"columnar layout: one value vector" s;
  Helpers.assert_contains ~needle:"kernels [" s;
  Helpers.assert_contains ~needle:"count" s;
  Helpers.assert_contains ~needle:"sum?" s;
  Helpers.assert_contains ~needle:"partition not materialized" s;
  let join =
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P \
     WHERE C.CUSTOMERID = P.CUSTID"
  in
  let s = notes join ~columnar:true in
  Helpers.assert_contains ~needle:"columnar:" s;
  Helpers.assert_contains ~needle:"(pruned" s;
  (* the layout off drops every columnar note *)
  let t = Helpers.translate app agg in
  let _, report =
    Optimize.query ~columnar:false t.Aqua_translator.Translator.xquery
  in
  check_bool "no columnar notes with the layout off" true
    (List.for_all
       (fun n -> not (Helpers.contains ~needle:"columnar" n))
       report.Optimize.notes)

(* Kernel recognition bails to the materializing path when the
   partition escapes the aggregate shapes — and the results agree
   either way. *)
let non_kernelizable_group_agrees () =
  let app = Helpers.demo_app () in
  (* DISTINCT inside the aggregate materializes the partition *)
  let sql =
    "SELECT P.CUSTID, COUNT(DISTINCT P.PAYMENT) N FROM PAYMENTS P \
     GROUP BY P.CUSTID"
  in
  let col = Connection.connect app in
  let row = Connection.connect ~vectorize:false app in
  List.iter
    (fun size ->
      with_batch_size size @@ fun () ->
      agree ~what:(Printf.sprintf "distinct-agg@%d" size) sql (run col sql)
        (run row sql))
    edge_sizes

(* --------------------------------------------------------------- *)
(* Join_table.probe_batch: identical matches and errors to row-wise
   probe calls.                                                      *)

let probe_batch_matches_probe () =
  let item i = Item.Atomic (Atomic.Integer i) in
  let source = [ item 2; item 3; item 3; item 5 ] in
  let t =
    Join_table.build source ~key_of:(fun it -> [ it ]) ~value_cmp:true
  in
  let probes =
    [ [ Atomic.Integer 3 ]; []; [ Atomic.Integer 2 ]; [ Atomic.Integer 9 ] ]
  in
  let expected =
    List.concat
      (List.mapi
         (fun i atoms ->
           List.map (fun r -> (i, r)) (Join_table.probe t ~value_cmp:true atoms))
         probes)
  in
  let got = ref [] in
  Join_table.probe_batch t ~value_cmp:true ~rows:(List.length probes)
    ~atoms_of:(fun i -> List.nth probes i)
    ~emit:(fun i r -> got := (i, r) :: !got);
  Alcotest.(check (list (pair int int)))
    "batched probe emits the same (probe, build) pairs in order" expected
    (List.rev !got);
  (* cardinality error parity: a multi-atom probe against a nonempty
     build raises in both entry points *)
  let multi = [ Atomic.Integer 1; Atomic.Integer 2 ] in
  let raises f = match f () with _ -> false | exception _ -> true in
  check_bool "row-wise probe raises on multi-atom key" true
    (raises (fun () -> Join_table.probe t ~value_cmp:true multi));
  check_bool "batched probe raises on multi-atom key" true
    (raises (fun () ->
         Join_table.probe_batch t ~value_cmp:true ~rows:1
           ~atoms_of:(fun _ -> multi)
           ~emit:(fun _ _ -> ())))

(* --------------------------------------------------------------- *)
(* Columnar views: Rowset transposed batches and the scan cache's
   zero-copy value vector.                                           *)

let rowset_column_batches () =
  let schema =
    [ Schema.column ~nullable:false "A" Sql_type.Integer;
      Schema.column ~nullable:false "B" Sql_type.Integer ]
  in
  let rows =
    List.map (fun i -> [| Value.Int i; Value.Int (10 * i) |]) [ 1; 2; 3; 4; 5 ]
  in
  let rs = Rowset.make schema rows in
  let batches = Rowset.column_batches ~size:2 rs in
  Alcotest.(check (list int))
    "one vector per column, size-capped with a short tail" [ 2; 2; 1 ]
    (List.map (fun cols -> Array.length cols.(0)) batches);
  List.iter
    (fun cols -> check_int "every batch carries both columns" 2 (Array.length cols))
    batches;
  let col_a =
    List.concat_map (fun cols -> Array.to_list cols.(0)) batches
  in
  let col_b =
    List.concat_map (fun cols -> Array.to_list cols.(1)) batches
  in
  Alcotest.(check (list string))
    "column A preserves row order" [ "1"; "2"; "3"; "4"; "5" ]
    (List.map Value.to_display col_a);
  Alcotest.(check (list string))
    "column B is the transposed second column" [ "10"; "20"; "30"; "40"; "50" ]
    (List.map Value.to_display col_b)

let scan_cache_column_serve () =
  let app = Artifact.application "A" in
  let cache = Scan_cache.create app in
  let items = List.init 10 (fun i -> Item.Atomic (Atomic.Integer i)) in
  Scan_cache.store cache "k" items;
  (match Scan_cache.find_column cache "k" with
  | None -> Alcotest.fail "stored key must be served"
  | Some arr ->
    check_int "the whole scan as one vector" 10 (Array.length arr);
    check_bool "items shared, not copied" true
      (List.for_all2 ( == ) items (Array.to_list arr));
    (* zero-copy: a second columnar serve hands back the same array *)
    (match Scan_cache.find_column cache "k" with
    | Some arr' -> check_bool "repeat serve is the same array" true (arr == arr')
    | None -> Alcotest.fail "repeat lookup must still hit"));
  check_int "columnar lookups counted as hits" 2
    (Scan_cache.stats cache).Scan_cache.hits;
  check_bool "unknown key misses" true (Scan_cache.find_column cache "nope" = None)

(* --------------------------------------------------------------- *)
(* Group-key buffer reuse (row path satellite): grouping stays
   injective — groups keyed by values that stringify alike must not
   merge after the composite buffer became shared scratch.           *)

let group_key_injective_after_buffer_reuse () =
  let app = Artifact.application "G" in
  let t =
    Table.create "T"
      [ Schema.column ~nullable:false "K" (Sql_type.Varchar (Some 10));
        Schema.column ~nullable:false "V" Sql_type.Integer ]
  in
  (* "1" (string) vs 1 (int-looking string) and a NULL-adjacent empty
     string: all distinct group keys *)
  List.iter (fun (k, v) -> Table.insert t [ Value.Str k; Value.Int v ])
    [ ("1", 1); ("1 ", 2); ("", 3); ("1", 4) ];
  ignore (Artifact.import_physical_table app ~project:"P" t);
  let sql = "SELECT X.K, COUNT(*) N, SUM(X.V) S FROM T X GROUP BY X.K" in
  let col = Connection.connect app in
  let row = Connection.connect ~vectorize:false app in
  List.iter
    (fun size ->
      with_batch_size size @@ fun () ->
      (match run col sql with
      | Ok rs -> check_int "three distinct groups" 3 (List.length rs.Rowset.rows)
      | Error e -> Alcotest.failf "columnar group failed: %s" e);
      agree ~what:(Printf.sprintf "group-key@%d" size) sql (run col sql)
        (run row sql))
    edge_sizes

let suite =
  ( "columnar",
    [ Helpers.case "battery agrees at batch size 1" (battery_at_size 1);
      Helpers.case "battery agrees at batch size 2" (battery_at_size 2);
      Helpers.case "battery agrees at batch size 7" (battery_at_size 7);
      Helpers.case "battery agrees at batch size 1024" (battery_at_size 1024);
      Helpers.case "aggregation kernels agree at every edge size"
        aggregation_battery;
      Helpers.qcheck prop_columnar_differential;
      Helpers.case "governors trip at batch boundaries"
        governors_under_columnar;
      Helpers.case "mid-stream batch fault falls back"
        midstream_failpoint_falls_back;
      Helpers.case "columnar counters respect the toggle"
        columnar_counters_respect_toggle;
      Helpers.case "pruning and kernel notes in analyze output"
        pruning_notes_golden;
      Helpers.case "non-kernelizable groups agree"
        non_kernelizable_group_agrees;
      Helpers.case "batched probe matches row-wise probe"
        probe_batch_matches_probe;
      Helpers.case "rowset columnar batch view" rowset_column_batches;
      Helpers.case "scan cache zero-copy column serve" scan_cache_column_serve;
      Helpers.case "group keys stay injective under buffer reuse"
        group_key_injective_after_buffer_reuse ] )
