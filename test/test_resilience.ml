(* The resilience layer: deterministic backoff, circuit-breaker state
   machine, per-query budgets at the driver boundary, failpoint
   schedules, and the fault-injection differential suite — with any
   single site armed, every workload query must terminate with either
   the oracle result or a stable SQLSTATE-coded error. *)

module Budget = Aqua_resilience.Budget
module Breaker = Aqua_resilience.Breaker
module Failpoint = Aqua_resilience.Failpoint
module Retry = Aqua_resilience.Retry
module Sqlstate = Aqua_resilience.Sqlstate
module Telemetry = Aqua_core.Telemetry
module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Sql_error = Aqua_driver.Sql_error
module Server = Aqua_dsp.Server
module Artifact = Aqua_dsp.Artifact
module Engine = Aqua_sqlengine.Engine
module Rowset = Aqua_relational.Rowset
module X = Aqua_xquery.Ast

let wall_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Install a hand-cranked clock for the extent of [f]; breakers and
   budget deadlines read time through Telemetry. *)
let with_fake_clock f =
  let now = ref 0L in
  Telemetry.set_clock (fun () -> !now);
  Fun.protect ~finally:(fun () -> Telemetry.set_clock wall_clock) (fun () ->
      f now)

let with_failpoints ?seed spec f =
  Failpoint.arm ?seed spec;
  Fun.protect ~finally:Failpoint.disarm f

(* ------------------------------------------------------------------ *)
(* Retry                                                              *)

let backoff_deterministic () =
  let p = Retry.default_policy in
  Alcotest.(check (list int64))
    "same policy, same schedule" (Retry.backoff_schedule p)
    (Retry.backoff_schedule p);
  List.iteri
    (fun i d ->
      let attempt = i + 2 in
      let nominal =
        Int64.to_float p.Retry.base_delay_ns
        *. (p.Retry.multiplier ** float_of_int (attempt - 2))
      in
      let nominal = min nominal (Int64.to_float p.Retry.max_delay_ns) in
      let lo = nominal *. (1. -. p.Retry.jitter) -. 1. in
      let hi = nominal *. (1. +. p.Retry.jitter) +. 1. in
      let d = Int64.to_float d in
      if d < lo || d > hi then
        Alcotest.failf "delay %d out of jitter band: %.0f not in [%.0f, %.0f]"
          attempt d lo hi)
    (Retry.backoff_schedule p);
  let reseeded = { p with Retry.seed = p.Retry.seed + 1 } in
  if Retry.backoff_schedule p = Retry.backoff_schedule reseeded then
    Alcotest.fail "different seeds produced identical jitter"

let retry_heals_transient () =
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  let attempts = ref 0 in
  let result =
    Retry.with_retry ~sleep (fun () ->
        incr attempts;
        if !attempts < 3 then
          raise (Failpoint.Injected { site = "t"; hit = !attempts })
        else "ok")
  in
  Alcotest.(check string) "healed" "ok" result;
  Alcotest.(check int) "attempts" 3 !attempts;
  Alcotest.(check int) "slept twice" 2 (List.length !slept)

let retry_gives_up_and_skips_fatal () =
  let attempts = ref 0 in
  (try
     Retry.with_retry
       ~sleep:(fun _ -> ())
       (fun () ->
         incr attempts;
         raise (Failpoint.Injected { site = "t"; hit = !attempts }))
   with Failpoint.Injected _ -> ());
  Alcotest.(check int) "transient: all attempts used"
    Retry.default_policy.Retry.max_attempts !attempts;
  attempts := 0;
  (try
     Retry.with_retry
       ~sleep:(fun _ -> ())
       (fun () ->
         incr attempts;
         failwith "deterministic bug")
   with Failure _ -> ());
  Alcotest.(check int) "fatal: single attempt" 1 !attempts

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                    *)

let breaker_state_machine () =
  with_fake_clock @@ fun now ->
  let config = { Breaker.failure_threshold = 2; cooldown_ns = 1_000L } in
  let b = Breaker.create ~config "svc:fn" in
  let boom () = Breaker.call b (fun () -> failwith "backend down") in
  let ok () = Breaker.call b (fun () -> 42) in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  (try ignore (boom ()) with Failure _ -> ());
  Alcotest.(check bool) "below threshold: still closed" true
    (Breaker.state b = Breaker.Closed);
  (try ignore (boom ()) with Failure _ -> ());
  Alcotest.(check bool) "tripped open" true (Breaker.state b = Breaker.Open);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  (match ok () with
   | exception Breaker.Open_circuit { name } ->
     Alcotest.(check string) "rejection names the function" "svc:fn" name
   | _ -> Alcotest.fail "open breaker admitted a call");
  Alcotest.(check int) "rejection counted" 1 (Breaker.rejections b);
  now := 2_000L;
  (* past cooldown: one trial call; failure re-opens *)
  (try ignore (boom ()) with Failure _ -> ());
  Alcotest.(check bool) "trial failure re-opened" true
    (Breaker.state b = Breaker.Open);
  Alcotest.(check int) "second trip" 2 (Breaker.trips b);
  now := 4_000L;
  Alcotest.(check int) "trial success passes through" 42 (ok ());
  Alcotest.(check bool) "recovered to closed" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "recovery counted" 1 (Breaker.recoveries b)

let breaker_ignores_budget_cancellations () =
  with_fake_clock @@ fun _now ->
  let config = { Breaker.failure_threshold = 1; cooldown_ns = 1_000L } in
  let b = Breaker.create ~config "svc:fn" in
  let count_failure = function Budget.Exceeded _ -> false | _ -> true in
  (try
     Breaker.call ~count_failure b (fun () ->
         raise (Budget.Exceeded { resource = Budget.Deadline; limit = 1L }))
   with Budget.Exceeded _ -> ());
  Alcotest.(check bool) "cancellation did not trip" true
    (Breaker.state b = Breaker.Closed)

(* A server-level view: persistent faults trip the per-function
   breaker, whose rejections surface as SQLSTATE 08004. *)
let breaker_trips_at_server () =
  with_fake_clock @@ fun _now ->
  let app = Helpers.demo_app () in
  let srv =
    Server.create ~retry:Retry.no_retry
      ~breaker:{ Breaker.failure_threshold = 2; cooldown_ns = Int64.max_int }
      app
  in
  let env = Aqua_translator.Semantic.env_of_application app in
  let t =
    Aqua_translator.Translator.translate env "SELECT CUSTOMERNAME FROM CUSTOMERS"
  in
  with_failpoints "dsp.invoke=fail" @@ fun () ->
  let attempt () =
    match Server.execute srv t.Aqua_translator.Translator.xquery with
    | exception e -> e
    | _ -> Alcotest.fail "armed failpoint did not fire"
  in
  (match attempt () with
   | Failpoint.Injected _ -> ()
   | e -> Alcotest.failf "expected injected fault, got %s" (Printexc.to_string e));
  ignore (attempt ());
  (match attempt () with
   | Breaker.Open_circuit _ as e ->
     (match Sql_error.classify e with
      | Some s ->
        Alcotest.(check string) "breaker rejection code" "08004"
          s.Sqlstate.sqlstate
      | None -> Alcotest.fail "Open_circuit not classified")
   | e -> Alcotest.failf "expected open circuit, got %s" (Printexc.to_string e));
  match Server.breakers srv with
  | [ b ] ->
    Alcotest.(check int) "tripped once" 1 (Breaker.trips b);
    Alcotest.(check bool) "rejections counted" true (Breaker.rejections b >= 1)
  | bs -> Alcotest.failf "expected one breaker, got %d" (List.length bs)

(* ------------------------------------------------------------------ *)
(* Budgets at the driver boundary                                     *)

let sqlstate_of_query conn sql =
  match Connection.execute_query conn sql with
  | exception Sqlstate.Error e -> e.Sqlstate.sqlstate
  | _ -> Alcotest.fail "expected the governor to trip"

let row_governor () =
  let conn =
    Connection.connect
      ~limits:(Budget.limits ~max_rows:2 ())
      (Helpers.demo_app ())
  in
  Alcotest.(check string) "row limit code" "53400"
    (sqlstate_of_query conn "SELECT * FROM CUSTOMERS");
  Connection.set_limits conn Budget.no_limits;
  let rs = Connection.execute_query conn "SELECT * FROM CUSTOMERS" in
  Alcotest.(check bool) "no limits: runs" true
    (List.length (Result_set.to_rowset rs).Rowset.rows > 2)

let fuel_governor () =
  let conn =
    Connection.connect
      ~limits:(Budget.limits ~max_fuel:10 ())
      (Helpers.demo_app ())
  in
  Alcotest.(check string) "fuel limit code" "53000"
    (sqlstate_of_query conn "SELECT * FROM CUSTOMERS")

let deadline_governor () =
  let conn =
    Connection.connect
      ~limits:(Budget.limits ~timeout_ms:0 ())
      (Helpers.demo_app ())
  in
  Alcotest.(check string) "deadline code" "57014"
    (sqlstate_of_query conn "SELECT * FROM CUSTOMERS")

let position_reaches_driver_message () =
  let conn = Connection.connect (Helpers.demo_app ()) in
  match Connection.execute_query conn "SELECT\n  BOGUS FROM CUSTOMERS" with
  | exception Sqlstate.Error e ->
    Alcotest.(check string) "unknown column code" "42703" e.Sqlstate.sqlstate;
    if not (Helpers.contains ~needle:"line 2" e.Sqlstate.message) then
      Alcotest.failf "position missing from message: %s" e.Sqlstate.message
  | _ -> Alcotest.fail "bad SQL accepted"

(* ------------------------------------------------------------------ *)
(* Failpoint schedules                                                *)

let failpoint_schedules () =
  let fired name =
    match Failpoint.hit name with
    | exception Failpoint.Injected _ -> true
    | () -> false
  in
  with_failpoints "a=fail(2);b=at(3);c=delay(1ms)" (fun () ->
      Alcotest.(check (list bool))
        "fail(2): first two hits fail" [ true; true; false; false ]
        (List.init 4 (fun _ -> fired "a"));
      Alcotest.(check (list bool))
        "at(3): exactly the third hit fails" [ false; false; true; false ]
        (List.init 4 (fun _ -> fired "b"));
      Alcotest.(check bool) "delay passes" false (fired "c");
      Alcotest.(check bool) "unarmed site passes" false (fired "dsp.invoke"));
  Failpoint.arm "a=fail";
  Failpoint.disarm ();
  Alcotest.(check bool) "disarmed site passes" false (fired "a");
  (match Failpoint.arm "a=bogus()" with
   | exception Failpoint.Spec_error _ -> Failpoint.disarm ()
   | () ->
     Failpoint.disarm ();
     Alcotest.fail "malformed spec accepted");
  (* flaky(p) is deterministic for a fixed seed *)
  let sample seed =
    with_failpoints ~seed "a=flaky(0.5)" (fun () ->
        List.init 20 (fun _ -> fired "a"))
  in
  Alcotest.(check (list bool)) "flaky: seeded determinism" (sample 7) (sample 7);
  if sample 7 = sample 8 then Alcotest.fail "flaky ignored the seed"

(* ------------------------------------------------------------------ *)
(* Fault-injection differential suite                                 *)

let workload =
  [ "SELECT CUSTOMERNAME, CITY FROM CUSTOMERS WHERE TIER = 1";
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C INNER JOIN PAYMENTS P \
     ON C.CUSTOMERID = P.CUSTID";
    "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY ORDER BY CITY" ]

(* Every catalogued site, under a heal-after-one schedule and a
   permanent-failure schedule: each query must finish fast and either
   match the oracle or raise a coded error.  No hangs, no uncoded
   exceptions. *)
let fault_differential () =
  let app = Helpers.demo_app () in
  let oracle =
    List.map
      (fun sql -> Engine.execute_sql (Engine.env_of_application app) sql)
      workload
  in
  let known_codes = [ "08006"; "08004"; "08P01"; "XX000" ] in
  List.iter
    (fun site ->
      List.iter
        (fun schedule ->
          let conn =
            Connection.connect
              ~limits:(Budget.limits ~timeout_ms:10_000 ())
              app
          in
          with_failpoints (site ^ "=" ^ schedule) @@ fun () ->
          List.iter2
            (fun sql expected ->
              match Connection.execute_query conn sql with
              | rs -> (
                match
                  Rowset.diff_summary expected (Result_set.to_rowset rs)
                with
                | None -> ()
                | Some msg ->
                  Alcotest.failf "%s=%s: wrong rows on %s: %s" site schedule
                    sql msg)
              | exception Sqlstate.Error e ->
                if not (List.mem e.Sqlstate.sqlstate known_codes) then
                  Alcotest.failf "%s=%s: unstable code %s on %s" site schedule
                    e.Sqlstate.sqlstate sql
              | exception e ->
                Alcotest.failf "%s=%s: uncoded exception %s on %s" site
                  schedule (Printexc.to_string e) sql)
            workload oracle)
        [ "fail(1)"; "fail" ])
    Failpoint.catalog;
  (* the engine-side site is exercised through the oracle path *)
  with_failpoints "engine.scan=fail" @@ fun () ->
  match Engine.execute_sql (Engine.env_of_application app) (List.hd workload) with
  | exception Failpoint.Injected { site; _ } ->
    Alcotest.(check string) "engine site" "engine.scan" site
  | _ -> Alcotest.fail "engine.scan did not fire"

(* Retry heals a single transient backend fault invisibly: same rows
   as the oracle, one fault and one retry in the counters. *)
let retry_heals_end_to_end () =
  let app = Helpers.demo_app () in
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) @@ fun () ->
  with_failpoints "dsp.invoke=fail(1)" @@ fun () ->
  Helpers.assert_differential app (List.hd workload);
  Alcotest.(check int) "one fault" 1 (Telemetry.value Telemetry.c_faults_injected);
  Alcotest.(check bool) "at least one retry" true
    (Telemetry.value Telemetry.c_retry_attempts >= 1)

(* Graceful degradation: a fault inside the optimized evaluator
   (xqeval.hashjoin only exists in optimized plans) falls back to the
   naive pipeline and still produces the oracle rows. *)
let fallback_to_unoptimized () =
  let app = Helpers.demo_app () in
  let sql =
    "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C INNER JOIN PAYMENTS P \
     ON C.CUSTOMERID = P.CUSTID"
  in
  let oracle = Engine.execute_sql (Engine.env_of_application app) sql in
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) @@ fun () ->
  with_failpoints "xqeval.hashjoin=fail" @@ fun () ->
  let conn = Connection.connect ~optimize:true app in
  let rs = Connection.execute_query conn sql in
  (match Rowset.diff_summary oracle (Result_set.to_rowset rs) with
   | None -> ()
   | Some msg -> Alcotest.failf "fallback produced wrong rows: %s" msg);
  Alcotest.(check bool) "fallback counted" true
    (Telemetry.value Telemetry.c_fallbacks_unoptimized >= 1)

(* ------------------------------------------------------------------ *)
(* Two-service cycle (satellite of the call-depth fix)                *)

let two_service_cycle () =
  let app = Artifact.application "CycleApp" in
  let import name =
    [ { X.prefix = "s";
        namespace = "ld:P/" ^ name;
        location = "ld:P/schemas/" ^ name ^ ".xsd" } ]
  in
  let service name calls =
    ignore
      (Artifact.add_logical_service app ~project:"P" ~name
         [ { Artifact.fn_name = name;
             params = [];
             element_name = name;
             columns = [];
             body = Artifact.Logical { imports = import calls; body = X.call ("s:" ^ calls) [] };
           } ])
  in
  service "PING" "PONG";
  service "PONG" "PING";
  let srv = Server.create app in
  let q =
    { X.prolog = { X.imports = import "PING" }; body = X.call "s:PING" [] }
  in
  match Server.execute srv q with
  | exception Sqlstate.Error e ->
    Alcotest.(check string) "cycle code" "54001" e.Sqlstate.sqlstate;
    if
      not
        (Helpers.contains ~needle:"P/PING:PING -> P/PONG:PONG"
           e.Sqlstate.message)
    then Alcotest.failf "chain missing both services: %s" e.Sqlstate.message
  | _ -> Alcotest.fail "two-service cycle not caught"

(* ------------------------------------------------------------------ *)
(* LRU hardening and cache invalidation                               *)

let lru_stamp_wraparound () =
  let lru = Connection.Lru.create ~stamp_limit:6 ~enabled:true 3 in
  Connection.Lru.add lru "a" 1;
  Connection.Lru.add lru "b" 2;
  Connection.Lru.add lru "c" 3;
  (* many touches would overflow a 6-stamp clock without renumbering *)
  for _ = 1 to 50 do
    ignore (Connection.Lru.find lru "b");
    ignore (Connection.Lru.find lru "c")
  done;
  Alcotest.(check bool) "clock stays bounded" true
    (Connection.Lru.clock lru <= 7);
  (* "a" is least recent; adding a fourth key must evict it *)
  Connection.Lru.add lru "d" 4;
  Alcotest.(check (option int)) "lru evicted after renumbering" None
    (Connection.Lru.find lru "a");
  Alcotest.(check (option int)) "recent key survives" (Some 3)
    (Connection.Lru.find lru "c")

let cache_invalidation_on_metadata_change () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  let sql = "SELECT CUSTOMERNAME FROM CUSTOMERS" in
  ignore (Connection.translate conn sql);
  Alcotest.(check int) "cached" 1 (Connection.translation_cache_size conn);
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) @@ fun () ->
  ignore (Connection.translate conn sql);
  Alcotest.(check int) "second translate is a hit" 1
    (Telemetry.value Telemetry.c_cache_hits);
  (* a metadata change bumps the application revision; the next use
     must flush and re-translate *)
  let table =
    Aqua_relational.Table.create "FRESH"
      [ { Aqua_relational.Schema.name = "ID";
          ty = Aqua_relational.Sql_type.Integer;
          nullable = false } ]
  in
  ignore (Artifact.import_physical_table app ~project:"Demo" table);
  ignore (Connection.translate conn sql);
  Alcotest.(check int) "stale cache flushed: translate missed" 1
    (Telemetry.value Telemetry.c_cache_misses);
  Alcotest.(check int) "re-cached" 1 (Connection.translation_cache_size conn);
  (* the new table is immediately visible through the same connection *)
  ignore (Connection.translate conn "SELECT ID FROM FRESH");
  Connection.invalidate conn;
  Alcotest.(check int) "explicit invalidate empties the cache" 0
    (Connection.translation_cache_size conn)

(* ------------------------------------------------------------------ *)
(* SQLSTATE taxonomy: the full code table, pinned.  Every boundary in
   the repo (driver, wire server, governors) reports through these
   constants, so a silent renumber would skew clients keying on the
   class prefix — this test makes any drift a loud diff. *)

let sqlstate_taxonomy () =
  let table =
    [ (Sqlstate.connection_failure, "08006");
      (Sqlstate.connection_rejected, "08004");
      (Sqlstate.protocol_violation, "08P01");
      (Sqlstate.cardinality_violation, "21000");
      (Sqlstate.data_exception, "22000");
      (Sqlstate.external_routine_exception, "38000");
      (Sqlstate.syntax_error, "42601");
      (Sqlstate.undefined_table, "42P01");
      (Sqlstate.undefined_column, "42703");
      (Sqlstate.ambiguous_column, "42702");
      (Sqlstate.grouping_error, "42803");
      (Sqlstate.datatype_mismatch, "42804");
      (Sqlstate.feature_not_supported, "0A000");
      (Sqlstate.insufficient_resources, "53000");
      (Sqlstate.too_many_connections, "53300");
      (Sqlstate.configured_limit_exceeded, "53400");
      (Sqlstate.statement_too_complex, "54001");
      (Sqlstate.query_canceled, "57014");
      (Sqlstate.admin_shutdown, "57P01");
      (Sqlstate.cannot_connect_now, "57P03");
      (Sqlstate.internal_error, "XX000") ]
  in
  List.iter
    (fun (actual, expected) ->
      Alcotest.(check string) ("code " ^ expected) expected actual)
    table;
  (* all codes are distinct: two conditions must never alias *)
  let codes = List.map fst table in
  Alcotest.(check int) "codes are unique" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  (* every code is a well-formed 5-char SQLSTATE over [0-9A-Z] *)
  List.iter
    (fun c ->
      Alcotest.(check int) ("length of " ^ c) 5 (String.length c);
      String.iter
        (fun ch ->
          Alcotest.(check bool)
            (Printf.sprintf "char %c of %s" ch c)
            true
            ((ch >= '0' && ch <= '9') || (ch >= 'A' && ch <= 'Z')))
        c)
    codes;
  (* the operator-intervention class used by graceful drain: 57P01 for
     live sessions, 57P03 for queued-but-unserved connections *)
  Alcotest.(check string) "drain classes agree" "57"
    (String.sub Sqlstate.admin_shutdown 0 2);
  Alcotest.(check string) "drain classes agree" "57"
    (String.sub Sqlstate.cannot_connect_now 0 2);
  let e =
    Sqlstate.make ~sqlstate:Sqlstate.admin_shutdown
      ~condition:"admin shutdown" "server is draining"
  in
  Alcotest.(check string) "to_string format"
    "[57P01] admin shutdown: server is draining" (Sqlstate.to_string e)

(* ------------------------------------------------------------------ *)
(* CI fault-smoke entry: when AQUA_FAILPOINTS is set in the
   environment, run the differential workload under that schedule. *)

let env_armed_smoke () =
  match Sys.getenv_opt "AQUA_FAILPOINTS" with
  | None | Some "" -> ()
  | Some _ ->
    let armed = Failpoint.arm_from_env () in
    Fun.protect ~finally:Failpoint.disarm @@ fun () ->
    Alcotest.(check bool) "armed from environment" true armed;
    let app = Helpers.demo_app () in
    let conn =
      Connection.connect ~limits:(Budget.limits ~timeout_ms:10_000 ()) app
    in
    List.iter
      (fun sql ->
        match Connection.execute_query conn sql with
        | _ -> ()
        | exception Sqlstate.Error _ -> ())
      workload

let suite =
  ( "resilience",
    [ Helpers.case "backoff schedule is deterministic" backoff_deterministic;
      Helpers.case "retry heals transient faults" retry_heals_transient;
      Helpers.case "retry gives up / skips fatal" retry_gives_up_and_skips_fatal;
      Helpers.case "breaker state machine" breaker_state_machine;
      Helpers.case "breaker ignores budget cancellations"
        breaker_ignores_budget_cancellations;
      Helpers.case "breaker trips at the server" breaker_trips_at_server;
      Helpers.case "row governor (53400)" row_governor;
      Helpers.case "fuel governor (53000)" fuel_governor;
      Helpers.case "deadline governor (57014)" deadline_governor;
      Helpers.case "error position reaches the driver" position_reaches_driver_message;
      Helpers.case "failpoint schedules" failpoint_schedules;
      Helpers.case "fault-injection differential" fault_differential;
      Helpers.case "retry heals end to end" retry_heals_end_to_end;
      Helpers.case "fallback to unoptimized plan" fallback_to_unoptimized;
      Helpers.case "two-service cycle chain" two_service_cycle;
      Helpers.case "lru stamp wraparound" lru_stamp_wraparound;
      Helpers.case "sqlstate taxonomy is pinned" sqlstate_taxonomy;
      Helpers.case "cache invalidation on metadata change"
        cache_invalidation_on_metadata_change;
      Helpers.case "env-armed fault smoke" env_armed_smoke ] )
