(* XQuery parser: unit cases plus the print/parse round-trip property
   over every query the translator can emit. *)

module X = Aqua_xquery.Ast
module Parser = Aqua_xquery.Parser
module Pretty = Aqua_xquery.Pretty
module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let parse = Parser.parse_expr

let roundtrip_expr src =
  let e = parse src in
  let once = Pretty.expr_to_string e in
  let twice = Pretty.expr_to_string (parse once) in
  check_str ("fixpoint: " ^ src) once twice

let expression_cases () =
  List.iter roundtrip_expr
    [ "1 + 2 * 3";
      "7 div 2";
      "7 idiv 2";
      "7 mod 2";
      "-$x + 1";
      "\"it\"\"s\"";
      "$v/CUSTOMERID";
      "$v/A/B[1]";
      "$v/A[B = 1][2]";
      "fn:data($v/X)";
      "fn:concat(\"a\", \"b\", \"c\")";
      "fn:true()";
      "(1, 2, 3)";
      "()";
      "if (fn:empty($x)) then () else $x";
      "some $x in (1, 2) satisfies $x > 1";
      "every $x in $s, $y in $t satisfies $x = $y";
      "$a = $b or $a < $b and fn:not($c)";
      "$a eq $b";
      "$a le 5";
      "xs:integer(\"42\")";
      "<RECORD><A>{fn:data($v/A)}</A></RECORD>";
      "CUSTID";
      "PAYMENTS[CUSTID = $c/ID]";
      "." ]

let parse_shapes () =
  (match parse "$v/A" with
  | X.Path (X.Var "v", [ { X.name = "A"; predicates = [] } ]) -> ()
  | _ -> Alcotest.fail "path shape");
  (match parse "CUSTID" with
  | X.Path (X.Context_item, [ { X.name = "CUSTID"; _ } ]) -> ()
  | _ -> Alcotest.fail "relative path shape");
  (match parse "1 + 2 * 3" with
  | X.Binop (X.B_arith X.Add, _, X.Binop (X.B_arith X.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "precedence shape");
  (match parse "<E>literal</E>" with
  | X.Elem { name = "E"; content = [ X.Text "literal" ] } -> ()
  | _ -> Alcotest.fail "constructor text");
  match parse "fn:count($p) < 3" with
  | X.Binop (X.B_general X.Lt, X.Call ("fn:count", _), _) -> ()
  | _ -> Alcotest.fail "lt vs constructor disambiguation"

let flwor_cases () =
  let q =
    parse
      "for $x in $src let $y := $x * 2 where $y > 4 order by $y descending \
       return <R>{$y}</R>"
  in
  (match q with
  | X.Flwor { clauses = [ X.For _; X.Let _; X.Where _; X.Order_by _ ]; _ } -> ()
  | _ -> Alcotest.fail "flwor clause order");
  let g =
    parse
      "for $r in $rows group $r as $p by fn:data($r/K) as $k return \
       fn:count($p)"
  in
  (match g with
  | X.Flwor { clauses = [ X.For _; X.Group { keys = [ _ ]; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "group clause")

let prolog_case () =
  let q =
    Parser.parse_query
      "import schema namespace ns0 = \"ld:P/T\" at \"ld:P/schemas/T.xsd\";\n\
       (: authored view :)\n\
       for $r in ns0:T() return $r"
  in
  (match q.X.prolog.X.imports with
  | [ { X.prefix = "ns0"; namespace = "ld:P/T"; _ } ] -> ()
  | _ -> Alcotest.fail "imports");
  match q.X.body with X.Flwor _ -> () | _ -> Alcotest.fail "body"

let errors () =
  let bad s =
    match Parser.parse_expr s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted bad XQuery: %s" s
  in
  bad "";
  bad "for $x in";
  bad "<A>{1}</B>";
  bad "if (1) then 2";
  bad "(1, ";
  bad "$";
  bad "fn:count(1"

(* every translated query must round-trip through print/parse, and the
   reparsed query must evaluate identically *)
let translator_roundtrip () =
  let app = Helpers.demo_app () in
  let env = Aqua_translator.Semantic.env_of_application app in
  let srv = Aqua_dsp.Server.create app in
  List.iter
    (fun sql ->
      let t = Aqua_translator.Translator.translate env sql in
      let text = Aqua_xquery.Pretty.query_to_string t.Aqua_translator.Translator.xquery in
      let reparsed = Parser.parse_query text in
      let text2 = Aqua_xquery.Pretty.query_to_string reparsed in
      check_str ("print/parse fixpoint for: " ^ sql) text text2;
      let a = Aqua_dsp.Server.execute srv t.Aqua_translator.Translator.xquery in
      let b = Aqua_dsp.Server.execute srv reparsed in
      check_bool ("same result for: " ^ sql) true
        (List.length a = List.length b && List.for_all2 Item.equal a b))
    [ "SELECT * FROM CUSTOMERS";
      "SELECT CUSTOMERID ID FROM CUSTOMERS WHERE CUSTOMERID > 2 ORDER BY 1 DESC";
      "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID";
      "SELECT CITY, COUNT(*) N FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1";
      "SELECT CITY FROM CUSTOMERS WHERE TIER = 1 UNION SELECT CITY FROM CUSTOMERS WHERE TIER = 2";
      "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTOMERID FROM PO_CUSTOMERS)";
      "SELECT DISTINCT CITY FROM CUSTOMERS";
      "SELECT COUNT(*), SUM(TIER) FROM CUSTOMERS" ]

(* the same property over randomly generated SQL *)
let prop_translated_roundtrip =
  let app = Lazy.force (lazy (Aqua_workload.Datagen.application
    { Aqua_workload.Datagen.customers = 10; orders = 15; lines_per_order = 2;
      payments = 10 })) in
  let tables = Aqua_dsp.Metadata.list_tables app in
  let env = Aqua_translator.Semantic.env_of_application app in
  QCheck.Test.make ~name:"translated queries round-trip through the parser"
    ~count:150
    QCheck.(
      make
        (fun rand -> Aqua_workload.Querygen.generate rand tables)
        ~print:Aqua_sql.Pretty.statement_to_string)
    (fun stmt ->
      let t = Aqua_translator.Translator.translate_statement env stmt in
      let text =
        Aqua_xquery.Pretty.query_to_string t.Aqua_translator.Translator.xquery
      in
      let reparsed = Parser.parse_query text in
      Aqua_xquery.Pretty.query_to_string reparsed = text)

(* section-4 wrapper queries parse too *)
let wrapper_roundtrip () =
  let app = Helpers.demo_app () in
  let env = Aqua_translator.Semantic.env_of_application app in
  let t = Aqua_translator.Translator.translate env "SELECT CUSTOMERID, CITY FROM CUSTOMERS" in
  let wrapped = Aqua_translator.Translator.for_text_transport t in
  let text = Aqua_xquery.Pretty.query_to_string wrapped in
  let reparsed = Parser.parse_query text in
  check_str "wrapper fixpoint" text (Aqua_xquery.Pretty.query_to_string reparsed);
  let srv = Aqua_dsp.Server.create app in
  let direct = Aqua_dsp.Server.execute_to_text srv wrapped in
  let via_text = Aqua_dsp.Server.execute_text srv text in
  check_str "wrapper result" direct
    (String.concat ""
       (List.map
          (function
            | Item.Atomic a -> Atomic.to_lexical a
            | Item.Node _ -> Alcotest.fail "node in text result")
          via_text))

let suite =
  ( "xquery-parser",
    [ Helpers.case "expression round-trips" expression_cases;
      Helpers.case "parse shapes" parse_shapes;
      Helpers.case "flwor" flwor_cases;
      Helpers.case "prolog and comments" prolog_case;
      Helpers.case "errors" errors;
      Helpers.case "translator output round-trips" translator_roundtrip;
      Helpers.qcheck prop_translated_roundtrip;
      Helpers.case "section-4 wrapper round-trips" wrapper_roundtrip ] )
