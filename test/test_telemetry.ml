(* Telemetry layer: span nesting across the three translation stages,
   engine counters on known query shapes (the P6 join), NDJSON trace
   validity, and the driver cache/result-set counters. *)

module Telemetry = Aqua_core.Telemetry
module Json = Aqua_core.Json
module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic
module Server = Aqua_dsp.Server
module Connection = Aqua_driver.Connection
module Result_set = Aqua_driver.Result_set
module Datagen = Aqua_workload.Datagen

let case = Helpers.case

(* Run [f] with telemetry enabled and a fresh slate, collecting trace
   lines; always disable and detach the sink afterwards so the rest of
   the suite is unaffected. *)
let with_telemetry f =
  let lines = ref [] in
  Telemetry.set_trace_sink (Some (fun l -> lines := l :: !lines));
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled false;
      Telemetry.set_trace_sink None)
    (fun () ->
      let v = f () in
      (v, List.rev !lines))

let p6_sizes =
  { Datagen.customers = 10; orders = 40; lines_per_order = 2; payments = 12 }

let p6_sql =
  "SELECT C.CUSTOMERNAME, O.ORDERID FROM CUSTOMERS C, ORDERS O WHERE \
   C.CUSTOMERID = O.CUSTOMERID AND O.PRIORITY > 1"

(* --- spans ---------------------------------------------------------- *)

let span_events lines =
  List.filter_map
    (fun line ->
      let j = Json.parse line in
      match Json.member "ev" j with
      | Some (Json.Str "span") -> Some j
      | _ -> None)
    lines

let field_num name j =
  match Json.member name j with
  | Some (Json.Num f) -> f
  | _ -> Alcotest.failf "span event lacks numeric %S in %s" name (Json.to_string j)

let field_str name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "span event lacks string %S in %s" name (Json.to_string j)

let test_stage_spans_nest () =
  let app = Helpers.demo_app () in
  let env = Semantic.env_of_application app in
  let (), lines =
    with_telemetry (fun () ->
        ignore (Translator.translate env "SELECT CUSTOMERNAME FROM CUSTOMERS"))
  in
  let spans = span_events lines in
  let depth_of name =
    match
      List.find_opt (fun j -> field_str "name" j = name) spans
    with
    | Some j -> int_of_float (field_num "depth" j)
    | None ->
      Alcotest.failf "no span named %s in trace:\n%s" name
        (String.concat "\n" lines)
  in
  (* the three stages are children (depth 1) of the depth-0 translate span *)
  Alcotest.(check int) "translate depth" 0 (depth_of "translate");
  Alcotest.(check int) "parse depth" 1 (depth_of "translate.parse");
  Alcotest.(check int) "semantic depth" 1 (depth_of "translate.semantic");
  Alcotest.(check int) "generate depth" 1 (depth_of "translate.generate");
  (* stage spans aggregate into the snapshot *)
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "one translation" 1 snap.Telemetry.translations;
  Alcotest.(check bool) "parse time recorded" true (snap.Telemetry.parse_ns >= 0L);
  (* child stage totals cannot exceed the enclosing translate span *)
  let stage_total =
    Int64.add snap.Telemetry.parse_ns
      (Int64.add snap.Telemetry.semantic_ns snap.Telemetry.generate_ns)
  in
  Alcotest.(check bool) "stages within parent" true
    (stage_total <= Telemetry.span_total_ns "translate")

let test_span_stats_aggregate () =
  let (), _ =
    with_telemetry (fun () ->
        for _ = 1 to 3 do
          Telemetry.with_span "outer" (fun () ->
              Telemetry.with_span "inner" (fun () -> ()))
        done)
  in
  let find name =
    match
      List.find_opt (fun (n, _, _) -> n = name) (Telemetry.span_stats ())
    with
    | Some (_, count, total) -> (count, total)
    | None -> Alcotest.failf "no span stats for %s" name
  in
  let outer_n, outer_ns = find "outer" in
  let inner_n, inner_ns = find "inner" in
  Alcotest.(check int) "outer count" 3 outer_n;
  Alcotest.(check int) "inner count" 3 inner_n;
  Alcotest.(check bool) "inner within outer" true (inner_ns <= outer_ns)

(* --- engine counters ------------------------------------------------ *)

let test_p6_join_counters () =
  let app = Datagen.application p6_sizes in
  let env = Semantic.env_of_application app in
  let t = Translator.translate env p6_sql in
  let srv = Server.create app in
  let (), _ =
    with_telemetry (fun () -> ignore (Server.execute srv t.Translator.xquery))
  in
  let snap = Telemetry.snapshot () in
  (* one hash join: ORDERS (second for) is the build side, one probe
     per customer tuple streaming through the pipeline *)
  Alcotest.(check int) "builds" 1 snap.Telemetry.hash_join_builds;
  Alcotest.(check int) "build rows = orders" p6_sizes.Datagen.orders
    snap.Telemetry.hash_join_build_rows;
  Alcotest.(check int) "probes = customers" p6_sizes.Datagen.customers
    snap.Telemetry.hash_join_probes;
  Alcotest.(check bool) "join rewrite fired" true
    (snap.Telemetry.hash_join_rewrites >= 1);
  Alcotest.(check bool) "rows emitted" true (snap.Telemetry.rows_emitted > 0);
  (* per-clause accounting saw the hash join *)
  let clause_rows = Telemetry.clause_rows () in
  Alcotest.(check bool) "hash-join clause recorded" true
    (List.exists
       (fun (label, _) ->
         String.length label >= 9 && String.sub label 0 9 = "hash-join")
       clause_rows)

let test_p6_naive_no_hash_join () =
  let app = Datagen.application p6_sizes in
  let env = Semantic.env_of_application app in
  let t = Translator.translate env p6_sql in
  let srv = Server.create ~optimize:false app in
  let (), _ =
    with_telemetry (fun () -> ignore (Server.execute srv t.Translator.xquery))
  in
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no hash builds" 0 snap.Telemetry.hash_join_builds;
  Alcotest.(check int) "no probes" 0 snap.Telemetry.hash_join_probes;
  (* the nested loop pushes every customer x order pair through the
     where clause *)
  Alcotest.(check bool) "nested loop emits the cross product" true
    (snap.Telemetry.rows_emitted
    >= p6_sizes.Datagen.customers * p6_sizes.Datagen.orders)

let test_disabled_counts_nothing () =
  Telemetry.reset ();
  let app = Datagen.application p6_sizes in
  let env = Semantic.env_of_application app in
  let t = Translator.translate env p6_sql in
  ignore (Server.execute (Server.create app) t.Translator.xquery);
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no translations" 0 snap.Telemetry.translations;
  Alcotest.(check int) "no builds" 0 snap.Telemetry.hash_join_builds;
  Alcotest.(check int) "no rows" 0 snap.Telemetry.rows_emitted

(* --- driver counters ------------------------------------------------ *)

let test_driver_cache_counters () =
  let app = Helpers.demo_app () in
  let sql = "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY 1" in
  let (), _ =
    with_telemetry (fun () ->
        let conn = Connection.connect app in
        ignore (Result_set.to_rowset (Connection.execute_query conn sql));
        ignore (Result_set.to_rowset (Connection.execute_query conn sql)))
  in
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "one miss" 1 snap.Telemetry.cache_misses;
  Alcotest.(check int) "one hit" 1 snap.Telemetry.cache_hits;
  Alcotest.(check bool) "rows materialized" true
    (snap.Telemetry.resultset_rows > 0);
  Alcotest.(check bool) "ds calls recorded" true (snap.Telemetry.ds_calls > 0)

(* --- NDJSON trace --------------------------------------------------- *)

let test_trace_is_ndjson () =
  let app = Helpers.demo_app () in
  let env = Semantic.env_of_application app in
  let sql =
    "SELECT CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT FROM CUSTOMERS LEFT \
     OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"
  in
  let (), lines =
    with_telemetry (fun () ->
        let t = Translator.translate env sql in
        ignore (Server.execute (Server.create app) t.Translator.xquery))
  in
  Alcotest.(check bool) "trace nonempty" true (lines <> []);
  (* every line is one standalone JSON object *)
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj _ as j ->
        if Json.member "ev" j = None then
          Alcotest.failf "trace line lacks \"ev\": %s" line
      | _ -> Alcotest.failf "trace line is not an object: %s" line
      | exception Json.Parse_error m ->
        Alcotest.failf "trace line does not parse (%s): %s" m line)
    lines;
  (* all three stages appear *)
  let names = List.map (field_str "name") (span_events lines) in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " traced") true (List.mem stage names))
    [ "translate.parse"; "translate.semantic"; "translate.generate" ];
  (* durations are sane *)
  List.iter
    (fun j ->
      Alcotest.(check bool) "dur_ns >= 0" true (field_num "dur_ns" j >= 0.0))
    (span_events lines);
  (* the snapshot serializes to parseable JSON too *)
  match Json.parse (Telemetry.metrics_to_json (Telemetry.snapshot ())) with
  | Json.Obj fields ->
    Alcotest.(check bool) "snapshot has fields" true (List.length fields >= 18)
  | _ -> Alcotest.fail "snapshot JSON is not an object"

let test_reset_zeroes () =
  let (), _ =
    with_telemetry (fun () ->
        Telemetry.incr Telemetry.c_cache_hits;
        Telemetry.with_span "x" (fun () -> ());
        ignore (Telemetry.clause_counter "for $x");
        Telemetry.reset ();
        let snap = Telemetry.snapshot () in
        Alcotest.(check int) "hits zeroed" 0 snap.Telemetry.cache_hits;
        Alcotest.(check (list (pair string int))) "clauses cleared" []
          (Telemetry.clause_rows ());
        Alcotest.(check int) "span stats cleared" 0
          (List.length (Telemetry.span_stats ())))
  in
  ()

(* --- clock robustness ----------------------------------------------- *)

(* Regression: the default clock derives from gettimeofday, which can
   step backwards (NTP).  A span closing before its rigged clock's
   "earlier" reading must record 0, never negative — and a later
   well-behaved span must still aggregate normally. *)
let test_backwards_clock_clamps () =
  let readings = ref [ 1_000L; 400L; 2_000L; 2_500L ] in
  let rigged () =
    match !readings with
    | [] -> 3_000L
    | t :: rest ->
      readings := rest;
      t
  in
  Telemetry.set_clock rigged;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_clock (fun () ->
          Int64.of_float (Unix.gettimeofday () *. 1e9)))
    (fun () ->
      let (), lines =
        with_telemetry (fun () ->
            Telemetry.with_span "rigged" (fun () -> ());
            Telemetry.with_span "rigged" (fun () -> ()))
      in
      (* first close: 400 - 1000 clamps to 0; second: 2500 - 2000 *)
      Alcotest.(check int64) "clamped total" 500L
        (Telemetry.span_total_ns "rigged");
      List.iter
        (fun j ->
          match Json.member "dur_ns" (Json.parse j) with
          | Some (Json.Num d) ->
            if d < 0.0 then
              Alcotest.failf "negative traced duration: %s" j
          | _ -> ())
        lines)

(* --- Json parser ---------------------------------------------------- *)

let test_json_parser () =
  let roundtrip s = Json.to_string (Json.parse s) in
  Alcotest.(check string) "object"
    {|{"a":1,"b":[true,null,"x"]}|}
    (roundtrip {|{ "a": 1, "b": [true, null, "x"] }|});
  Alcotest.(check string) "escapes" {|{"k":"a\"b"}|} (roundtrip {|{"k":"a\"b"}|});
  Alcotest.(check bool) "nested member" true
    (Json.member "b" (Json.parse {|{"a":{"c":2},"b":3}|}) = Some (Json.Num 3.0));
  (match Json.parse "[1, 2.5, -3e2]" with
  | Json.Arr [ Json.Num a; Json.Num b; Json.Num c ] ->
    Alcotest.(check (float 0.0)) "int" 1.0 a;
    Alcotest.(check (float 0.0)) "frac" 2.5 b;
    Alcotest.(check (float 0.0)) "exp" (-300.0) c
  | _ -> Alcotest.fail "array parse");
  let expect_error s =
    match Json.parse s with
    | _ -> Alcotest.failf "expected a parse error for %s" s
    | exception Json.Parse_error _ -> ()
  in
  expect_error "{\"a\":1} trailing";
  expect_error "{\"a\":}";
  expect_error "[1,]";
  expect_error "\"unterminated"

(* --- trace context -------------------------------------------------- *)

let test_trace_context_nests () =
  Alcotest.(check bool) "no ambient context" true
    (Telemetry.current_trace () = None);
  Telemetry.with_trace ~id:"outer" ~sampled:true (fun () ->
      Alcotest.(check (option string)) "outer id" (Some "outer")
        (Telemetry.current_trace_id ());
      Telemetry.with_trace ~id:"inner" ~sampled:false (fun () ->
          Alcotest.(check bool) "inner shadows" true
            (Telemetry.current_trace () = Some ("inner", false)));
      Alcotest.(check (option string)) "outer restored" (Some "outer")
        (Telemetry.current_trace_id ()));
  Alcotest.(check bool) "context cleared" true
    (Telemetry.current_trace () = None);
  (* restored on exception too *)
  (try
     Telemetry.with_trace ~id:"boom" ~sampled:true (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "cleared after raise" true
    (Telemetry.current_trace () = None)

let test_trace_sampling_gates_emission () =
  let (), lines =
    with_telemetry (fun () ->
        (* sampled: span lines emit, tagged with the id *)
        Telemetry.with_trace ~id:"tid-on" ~sampled:true (fun () ->
            Telemetry.with_span "t.sampled" (fun () -> ()));
        (* unsampled: no lines, but aggregates still fed *)
        Telemetry.with_trace ~id:"tid-off" ~sampled:false (fun () ->
            Telemetry.with_span "t.unsampled" (fun () -> ());
            Telemetry.trace_event "custom" [ ("k", "v") ]);
        (* no context: legacy emit-everything behavior *)
        Telemetry.with_span "t.plain" (fun () -> ()))
  in
  let spans = span_events lines in
  let names =
    List.map (fun j -> field_str "name" j) spans |> List.sort compare
  in
  Alcotest.(check (list string)) "only sampled and plain spans emitted"
    [ "t.plain"; "t.sampled" ] names;
  List.iter
    (fun j ->
      match (field_str "name" j, Json.member "trace" j) with
      | "t.sampled", Some (Json.Str id) ->
        Alcotest.(check string) "sampled span tagged" "tid-on" id
      | "t.sampled", _ -> Alcotest.fail "sampled span lacks trace field"
      | _, trace ->
        Alcotest.(check bool) "plain span untagged" true (trace = None))
    spans;
  Alcotest.(check bool) "unsampled span still aggregated" true
    (Telemetry.span_total_ns "t.unsampled" >= 0L
    && List.exists
         (fun (n, _, _) -> n = "t.unsampled")
         (Telemetry.span_stats ()))

let suite =
  ( "telemetry",
    [ case "three stages nest under translate" test_stage_spans_nest;
      case "span stats aggregate" test_span_stats_aggregate;
      case "p6 join counters" test_p6_join_counters;
      case "naive pipeline has no hash join" test_p6_naive_no_hash_join;
      case "disabled telemetry counts nothing" test_disabled_counts_nothing;
      case "driver cache and result-set counters" test_driver_cache_counters;
      case "trace output is NDJSON over all stages" test_trace_is_ndjson;
      case "reset zeroes everything" test_reset_zeroes;
      case "backwards clock clamps to zero" test_backwards_clock_clamps;
      case "json parser" test_json_parser;
      case "trace context nests and restores" test_trace_context_nests;
      case "trace sampling gates NDJSON, not aggregates"
        test_trace_sampling_gates_emission ] )
