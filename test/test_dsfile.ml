(* XSD documents and .ds-file deployment round trips. *)

module Xsd = Aqua_dsp.Xsd
module Dsfile = Aqua_dsp.Dsfile
module Artifact = Aqua_dsp.Artifact
module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Parser = Aqua_xquery.Parser

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_xsd =
  {
    Xsd.element_name = "CUSTOMERS";
    target_namespace = "ld:P/CUSTOMERS";
    columns =
      [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERNAME" (Sql_type.Varchar None);
        Schema.column "CITY" (Sql_type.Varchar None);
        Schema.column "PAYDATE" Sql_type.Date ]
  }

let xsd_roundtrip () =
  let text = Xsd.to_text sample_xsd in
  Helpers.assert_contains ~needle:"xs:schema" text;
  Helpers.assert_contains ~needle:"targetNamespace=\"ld:P/CUSTOMERS\"" text;
  Helpers.assert_contains ~needle:"minOccurs=\"0\"" text;
  let back = Xsd.of_text text in
  check_str "element" "CUSTOMERS" back.Xsd.element_name;
  check_str "namespace" "ld:P/CUSTOMERS" back.Xsd.target_namespace;
  check_int "columns" 4 (List.length back.Xsd.columns);
  let city = List.nth back.Xsd.columns 2 in
  check_bool "nullable survives" true city.Schema.nullable;
  let id = List.nth back.Xsd.columns 0 in
  check_bool "not-null survives" false id.Schema.nullable;
  check_bool "date type survives" true
    ((List.nth back.Xsd.columns 3).Schema.ty = Sql_type.Date)

let xsd_rejects_non_flat () =
  let bad s =
    match Xsd.of_text s with
    | exception Xsd.Invalid_schema _ -> ()
    | _ -> Alcotest.failf "accepted non-flat schema: %s" s
  in
  (* nested complex content *)
  bad
    "<xs:schema xmlns:xs=\"x\"><xs:element name=\"R\"><xs:complexType>\
     <xs:sequence><xs:element name=\"C\"><xs:complexType/></xs:element>\
     </xs:sequence></xs:complexType></xs:element></xs:schema>";
  (* repeating child *)
  bad
    "<xs:schema xmlns:xs=\"x\"><xs:element name=\"R\"><xs:complexType>\
     <xs:sequence><xs:element name=\"C\" type=\"xs:int\" \
     maxOccurs=\"unbounded\"/></xs:sequence></xs:complexType></xs:element>\
     </xs:schema>";
  (* no columns *)
  bad
    "<xs:schema xmlns:xs=\"x\"><xs:element name=\"R\"><xs:complexType>\
     <xs:sequence/></xs:complexType></xs:element></xs:schema>";
  (* not a schema at all *)
  bad "<html/>"

let parse_library_shapes () =
  let prolog, decls =
    Parser.parse_library
      "import schema namespace t1 = \"ld:P/T\" at \"ld:P/schemas/T.xsd\";\n\
       declare function f1:T()\n\
      \    as schema-element(t1:T)*\n\
      \    external;\n\n\
       declare function f1:byId($p1 as xs:int)\n\
      \    as schema-element(t1:T)* {\n\
       f1:T()[ID = $p1]\n\
       };\n"
  in
  check_int "imports" 1 (List.length prolog.Aqua_xquery.Ast.imports);
  check_int "decls" 2 (List.length decls);
  (match decls with
  | [ ext; logical ] ->
    check_str "external name" "f1:T" ext.Parser.fd_name;
    check_bool "external body" true (ext.Parser.fd_body = None);
    check_str "return type" "schema-element(t1:T)*" ext.Parser.fd_return;
    check_int "logical params" 1 (List.length logical.Parser.fd_params);
    check_bool "logical body" true (logical.Parser.fd_body <> None)
  | _ -> Alcotest.fail "bad decl count")

(* Full loop: render an existing service's .ds + .xsd text, deploy the
   text into a fresh application, and query it through the driver. *)
let deploy_roundtrip () =
  let table =
    Table.create "CUSTOMERS"
      [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERNAME" (Sql_type.Varchar (Some 40));
        Schema.column "CITY" (Sql_type.Varchar (Some 30)) ]
  in
  Table.insert_all table
    [ [ Value.Int 1; Value.Str "Acme"; Value.Str "Austin" ];
      [ Value.Int 2; Value.Str "Zenith"; Value.Null ] ];
  (* source application: render its files *)
  let src_app = Artifact.application "Source" in
  let ds = Artifact.import_physical_table src_app ~project:"P" table in
  let ds_text = Artifact.ds_file_text ds in
  let xsd_text =
    Xsd.to_text
      {
        Xsd.element_name = "CUSTOMERS";
        target_namespace = Artifact.namespace_of_service ds;
        columns = table.Table.schema;
      }
  in
  (* target application: deploy from text *)
  let target = Artifact.application "Target" in
  let deployed =
    Dsfile.deploy target ~path:"P" ~name:"CUSTOMERS"
      ~load_schema:(fun location ->
        Alcotest.(check string)
          "schema location requested" "ld:P/schemas/CUSTOMERS.xsd" location;
        Xsd.of_text xsd_text)
      ~bind_external:(fun fn -> if fn = "CUSTOMERS" then Some table else None)
      ds_text
  in
  check_int "one function" 1 (List.length deployed.Artifact.functions);
  let rows =
    Helpers.driver_rows target "SELECT CUSTOMERNAME, CITY FROM CUSTOMERS ORDER BY 1"
  in
  Helpers.check_rows "deployed service answers SQL"
    [ [ "Acme"; "Austin" ]; [ "Zenith"; "NULL" ] ]
    rows

let deploy_logical_from_text () =
  let app = Aqua_workload.Demo.build () in
  let ds_text =
    "import schema namespace t1 = \"ld:TestDataServices/CUSTOMERS\" at \
     \"ld:TestDataServices/schemas/CUSTOMERS.xsd\";\n\
     declare function f1:GOLD() as schema-element(t1:CUSTOMERS)* {\n\
     for $c in t1:CUSTOMERS() where $c/TIER = 1 return $c\n\
     };"
  in
  ignore
    (Dsfile.deploy app ~path:"Views" ~name:"GOLD"
       ~load_schema:(fun _ ->
         {
           Xsd.element_name = "CUSTOMERS";
           target_namespace = "ld:TestDataServices/CUSTOMERS";
           columns =
             [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
               Schema.column ~nullable:false "CUSTOMERNAME"
                 (Sql_type.Varchar (Some 40)) ];
         })
       ds_text);
  (* note: the function's own prefix t1 doubles as the import prefix,
     so the body resolves t1:CUSTOMERS through the prolog *)
  let rows = Helpers.driver_rows app "SELECT CUSTOMERNAME FROM GOLD ORDER BY 1" in
  Helpers.check_rows "gold customers" [ [ "Acme Widget Stores" ]; [ "Joe" ] ] rows

let deploy_errors () =
  let table = Table.create "T" [ Schema.column "A" Sql_type.Integer ] in
  let xsd =
    { Xsd.element_name = "T"; target_namespace = "ld:P/T";
      columns = [ Schema.column "A" Sql_type.Integer ] }
  in
  let ds_text =
    "import schema namespace t1 = \"ld:P/T\" at \"ld:P/schemas/T.xsd\";\n\
     declare function f1:T() as schema-element(t1:T)* external;"
  in
  (* external without a binding *)
  (match
     Dsfile.parse ~path:"P" ~name:"T" ~load_schema:(fun _ -> xsd) ds_text
   with
  | exception Dsfile.Deploy_error _ -> ()
  | _ -> Alcotest.fail "unbound external accepted");
  (* schema that does not declare the element *)
  (match
     Dsfile.parse ~path:"P" ~name:"T"
       ~load_schema:(fun _ -> { xsd with Xsd.element_name = "OTHER" })
       ~bind_external:(fun _ -> Some table)
       ds_text
   with
  | exception Dsfile.Deploy_error _ -> ()
  | _ -> Alcotest.fail "missing element accepted");
  (* non-flat return type *)
  match
    Dsfile.parse ~path:"P" ~name:"T" ~load_schema:(fun _ -> xsd)
      ~bind_external:(fun _ -> Some table)
      "declare function f1:T() as xs:integer external;"
  with
  | exception Dsfile.Deploy_error _ -> ()
  | _ -> Alcotest.fail "non-flat return accepted"

let suite =
  ( "dsfile",
    [ Helpers.case "xsd round-trip" xsd_roundtrip;
      Helpers.case "xsd rejects non-flat rows" xsd_rejects_non_flat;
      Helpers.case "parse library shapes" parse_library_shapes;
      Helpers.case "deploy round-trip" deploy_roundtrip;
      Helpers.case "deploy logical from text" deploy_logical_from_text;
      Helpers.case "deploy errors" deploy_errors ] )
