(* Data Services Platform substrate: artifacts, metadata API, cache,
   server execution, logical services. *)

module Artifact = Aqua_dsp.Artifact
module Metadata = Aqua_dsp.Metadata
module Server = Aqua_dsp.Server
module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module X = Aqua_xquery.Ast
module Item = Aqua_xml.Item

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let small_table name =
  let t =
    Table.create name
      [ Schema.column ~nullable:false "ID" Sql_type.Integer;
        Schema.column "NAME" (Sql_type.Varchar (Some 20)) ]
  in
  Table.insert t [ Value.Int 1; Value.Str "one" ];
  Table.insert t [ Value.Int 2; Value.Null ];
  t

let artifact_mapping () =
  let app = Artifact.application "App1" in
  let ds = Artifact.import_physical_table app ~project:"Proj" (small_table "T1") in
  check_str "namespace" "ld:Proj/T1" (Artifact.namespace_of_service ds);
  check_str "schema location" "ld:Proj/schemas/T1.xsd"
    (Artifact.schema_location_of_service ds);
  check_str "sql schema (Figure 2)" "Proj/T1" (Artifact.sql_schema_of_service ds);
  check_bool "find by namespace" true
    (Artifact.find_service_by_namespace app "ld:Proj/T1" = Some ds);
  (* duplicate registration rejected *)
  (match Artifact.import_physical_table app ~project:"Proj" (small_table "T1") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate service accepted");
  Helpers.assert_contains ~needle:"external" (Artifact.ds_file_text ds)

let metadata_lookup () =
  let app = Artifact.application "App2" in
  ignore (Artifact.import_physical_table app ~project:"P1" (small_table "T"));
  ignore (Artifact.import_physical_table app ~project:"P2" (small_table "T"));
  (* unqualified is ambiguous across projects *)
  (match Metadata.lookup app "T" with
  | Error (Metadata.Ambiguous_table _) -> ()
  | _ -> Alcotest.fail "expected ambiguity");
  (* schema-qualified resolves *)
  (match Metadata.lookup app ~schema:"P1/T" "T" with
  | Ok m -> check_str "schema" "P1/T" m.Metadata.schema
  | Error _ -> Alcotest.fail "qualified lookup failed");
  (match Metadata.lookup app "NOPE" with
  | Error (Metadata.Table_not_found _) -> ()
  | _ -> Alcotest.fail "expected not found");
  (* catalog mismatch *)
  (match Metadata.lookup app ~catalog:"Other" "T" with
  | Error (Metadata.Table_not_found _) -> ()
  | _ -> Alcotest.fail "expected catalog mismatch");
  check_int "list_tables" 2 (List.length (Metadata.list_tables app))

let wire_roundtrip () =
  let app = Artifact.application "App3" in
  ignore (Artifact.import_physical_table app ~project:"P" (small_table "W"));
  match Metadata.lookup app "W" with
  | Error _ -> Alcotest.fail "lookup failed"
  | Ok m ->
    let back = Metadata.of_wire (Metadata.to_wire m) in
    check_str "table" m.Metadata.table back.Metadata.table;
    check_str "namespace" m.Metadata.namespace back.Metadata.namespace;
    check_int "columns" 2 (List.length back.Metadata.columns);
    check_bool "nullability preserved" true
      ((List.nth back.Metadata.columns 1).Schema.nullable)

let cache_behaviour () =
  let app = Artifact.application "App4" in
  ignore (Artifact.import_physical_table app ~project:"P" (small_table "C"));
  let cache = Metadata.Cache.create app in
  ignore (Metadata.Cache.lookup cache "C");
  ignore (Metadata.Cache.lookup cache "C");
  check_int "one miss" 1 (Metadata.Cache.misses cache);
  check_int "one hit" 1 (Metadata.Cache.hits cache);
  Metadata.Cache.clear cache;
  ignore (Metadata.Cache.lookup cache "C");
  check_int "miss after clear" 2 (Metadata.Cache.misses cache);
  Metadata.Cache.set_enabled cache false;
  ignore (Metadata.Cache.lookup cache "C");
  ignore (Metadata.Cache.lookup cache "C");
  check_int "disabled cache always misses" 4 (Metadata.Cache.misses cache)

let physical_execution () =
  let app = Artifact.application "App5" in
  let ds = Artifact.import_physical_table app ~project:"P" (small_table "E") in
  let srv = Server.create app in
  let q =
    {
      X.prolog =
        {
          X.imports =
            [ {
                X.prefix = "ns0";
                namespace = Artifact.namespace_of_service ds;
                location = Artifact.schema_location_of_service ds;
              } ];
        };
      body = X.call "ns0:E" [];
    }
  in
  let items = Server.execute srv q in
  check_int "two rows" 2 (List.length items);
  (* absent element for NULL *)
  let xml = Server.execute_to_xml srv q in
  check_bool "null column is absent, not empty" false
    (Helpers.contains ~needle:"<NAME/>" xml)

let logical_service () =
  let app = Artifact.application "App6" in
  let ds = Artifact.import_physical_table app ~project:"P" (small_table "BASE") in
  let imports =
    [ {
        X.prefix = "b";
        namespace = Artifact.namespace_of_service ds;
        location = Artifact.schema_location_of_service ds;
      } ]
  in
  (* a logical view exposing only rows with a NAME *)
  let body =
    X.Flwor
      {
        X.clauses =
          [ X.For { var = "r"; source = X.call "b:BASE" [] };
            X.Where (X.call "fn:exists" [ X.path1 (X.var "r") "NAME" ]) ];
        X.return = X.var "r";
      }
  in
  ignore
    (Artifact.add_logical_service app ~project:"P" ~name:"NAMED"
       [ {
           Artifact.fn_name = "NAMED";
           params = [];
           element_name = "BASE";
           columns =
             [ Schema.column ~nullable:false "ID" Sql_type.Integer;
               Schema.column "NAME" (Sql_type.Varchar (Some 20)) ];
           body = Artifact.Logical { imports; body };
         } ]);
  let srv = Server.create app in
  let q =
    {
      X.prolog =
        {
          X.imports =
            [ { X.prefix = "v"; namespace = "ld:P/NAMED"; location = "ld:P/schemas/NAMED.xsd" } ];
        };
      body = X.call "v:NAMED" [];
    }
  in
  check_int "filtered rows" 1 (List.length (Server.execute srv q))

let parameterized_function () =
  let app = Artifact.application "App7" in
  let table = small_table "PT" in
  let ds = Artifact.import_physical_table app ~project:"P" table in
  let imports =
    [ {
        X.prefix = "b";
        namespace = Artifact.namespace_of_service ds;
        location = Artifact.schema_location_of_service ds;
      } ]
  in
  (* getById($p1) *)
  let body =
    X.Filter
      ( X.call "b:PT" [],
        X.Binop
          ( X.B_general X.Eq,
            X.Path (X.Context_item, [ { X.name = "ID"; predicates = [] } ]),
            X.var "p1" ) )
  in
  ignore
    (Artifact.add_logical_service app ~project:"P" ~name:"PTVIEWS"
       [ {
           Artifact.fn_name = "getById";
           params = [ { Artifact.param_name = "id"; param_type = Sql_type.Integer } ];
           element_name = "PT";
           columns = [];
           body = Artifact.Logical { imports; body };
         } ]);
  let srv = Server.create app in
  let result =
    Server.call_function srv ~path:"P" ~name:"PTVIEWS" ~fn:"getById"
      [ Item.of_int 2 ]
  in
  check_int "one row for id 2" 1 (List.length result);
  (* arity error *)
  (match Server.call_function srv ~path:"P" ~name:"PTVIEWS" ~fn:"getById" [] with
  | exception Aqua_xqeval.Error.Dynamic_error _ -> ()
  | _ -> Alcotest.fail "arity error not raised");
  (* parameterized functions are procedures, not tables *)
  check_int "procedures" 1 (List.length (Metadata.list_procedures app));
  check_bool "getById is not a table" true
    (match Metadata.lookup app "getById" with Error _ -> true | Ok _ -> false)

let recursion_guard () =
  let app = Artifact.application "App8" in
  let imports =
    [ { X.prefix = "s"; namespace = "ld:P/LOOP"; location = "ld:P/schemas/LOOP.xsd" } ]
  in
  ignore
    (Artifact.add_logical_service app ~project:"P" ~name:"LOOP"
       [ {
           Artifact.fn_name = "LOOP";
           params = [];
           element_name = "LOOP";
           columns = [];
           body = Artifact.Logical { imports; body = X.call "s:LOOP" [] };
         } ]);
  let srv = Server.create app in
  let q =
    {
      X.prolog =
        { X.imports =
            [ { X.prefix = "s"; namespace = "ld:P/LOOP"; location = "x" } ] };
      body = X.call "s:LOOP" [];
    }
  in
  match Server.execute srv q with
  | exception Aqua_resilience.Sqlstate.Error e ->
    Alcotest.(check string) "sqlstate" "54001" e.Aqua_resilience.Sqlstate.sqlstate;
    (* the error names the cycling function in its call chain *)
    if
      not
        (Helpers.contains ~needle:"P/LOOP:LOOP -> P/LOOP:LOOP"
           e.Aqua_resilience.Sqlstate.message)
    then Alcotest.failf "call chain missing: %s" e.Aqua_resilience.Sqlstate.message
  | _ -> Alcotest.fail "infinite recursion not caught"

let suite =
  ( "dsp",
    [ Helpers.case "artifact mapping (Figure 2)" artifact_mapping;
      Helpers.case "metadata lookup" metadata_lookup;
      Helpers.case "metadata wire round-trip" wire_roundtrip;
      Helpers.case "metadata cache" cache_behaviour;
      Helpers.case "physical execution" physical_execution;
      Helpers.case "logical service" logical_service;
      Helpers.case "parameterized function" parameterized_function;
      Helpers.case "recursion guard" recursion_guard ] )
