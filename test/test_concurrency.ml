(* Concurrent serving: N domains replaying the differential battery
   through one shared connection/session pool must produce exactly the
   rows the sequential oracle produces, with coherent caches and exact
   counters.  On a pre-5.0 build the Mcore shim runs every "domain"
   inline, so the suite still executes (sequentially) and still checks
   the same invariants — only the true-parallelism aspect is vacuous.

   AQUA_STRESS=<n> multiplies the replay rounds (CI runs the suite with
   AQUA_STRESS=20 to shake out schedule-dependent races). *)

module T = Aqua_core.Telemetry
module Mcore = Aqua_multicore.Mcore
module Budget = Aqua_resilience.Budget
module Sqlstate = Aqua_resilience.Sqlstate
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Rowset = Aqua_relational.Rowset
module Artifact = Aqua_dsp.Artifact
module Scan_cache = Aqua_dsp.Scan_cache
module Engine = Aqua_sqlengine.Engine
module Connection = Aqua_driver.Connection
module Session_pool = Aqua_driver.Session_pool
module Result_set = Aqua_driver.Result_set
module Stats = Aqua_obs.Stats
module Histogram = Aqua_obs.Histogram

let stress =
  match Option.bind (Sys.getenv_opt "AQUA_STRESS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 1

let domains = 4

(* a small, join-heavy slice of the differential battery — enough to
   exercise translation, both cache layers and the vectorized path on
   every round without making the stress loop minutes long *)
let workload =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take 24 Test_differential.battery

let with_telemetry f =
  let was = T.enabled () in
  T.set_enabled true;
  T.reset ();
  Fun.protect ~finally:(fun () -> T.set_enabled was) f

(* ------------------------------------------------------------------ *)

(* Satellite (c): the counter-race regression.  Four domains hammer one
   counter; with plain [mutable count] increments this loses updates on
   a multicore runtime, with [Atomic.t] the total is exact. *)
let counter_hammer () =
  with_telemetry @@ fun () ->
  let c = T.counter "test.concurrency.hammer" in
  let per_domain = 10_000 in
  let outcomes =
    Mcore.Domains.parallel
      (List.init domains (fun _ () ->
           for _ = 1 to per_domain do
             T.incr c
           done))
  in
  List.iter (function Ok () -> () | Error e -> raise e) outcomes;
  Alcotest.(check int)
    "no increment lost across domains" (domains * per_domain) (T.value c)

(* ------------------------------------------------------------------ *)

let rowset_of rs = Result_set.to_rowset rs

let check_same sql expected actual =
  match Rowset.diff_summary expected actual with
  | None -> ()
  | Some msg ->
    Alcotest.failf "concurrent result diverged on %s: %s" sql msg

(* The heart of the suite: the battery slice replayed by [domains]
   domains through one shared session pool must row-for-row match the
   baseline engine oracle, on every stress round. *)
let pool_replay () =
  let app = Helpers.demo_app () in
  let oracle_env = Engine.env_of_application app in
  let oracle = List.map (Engine.execute_sql oracle_env) workload in
  let conn = Connection.connect app in
  let pool = Session_pool.create ~capacity:domains conn in
  for _round = 1 to stress do
    let results =
      Session_pool.execute_concurrent ~domains ~wait_ms:10_000 pool workload
    in
    List.iter2
      (fun (sql, expected) result ->
        match result with
        | Ok rs -> check_same sql expected (rowset_of rs)
        | Error e ->
          Alcotest.failf "statement failed concurrently: %s: %s" sql
            (Printexc.to_string e))
      (List.combine workload oracle)
      results
  done;
  let s = Session_pool.stats pool in
  Alcotest.(check int) "all sessions returned" 0 s.Session_pool.in_use;
  Alcotest.(check bool)
    "borrows accounted"
    true
    (s.Session_pool.borrows >= stress * List.length workload)

(* Same replay through the raw connection entry point (no pool). *)
let connection_replay () =
  let app = Helpers.demo_app () in
  let oracle_env = Engine.env_of_application app in
  let oracle = List.map (Engine.execute_sql oracle_env) workload in
  let conn = Connection.connect app in
  for _round = 1 to stress do
    let results = Connection.execute_concurrent ~domains conn workload in
    List.iter2
      (fun (sql, expected) result ->
        match result with
        | Ok rs -> check_same sql expected (rowset_of rs)
        | Error e ->
          Alcotest.failf "statement failed concurrently: %s: %s" sql
            (Printexc.to_string e))
      (List.combine workload oracle)
      results
  done

(* ------------------------------------------------------------------ *)

(* Scan-cache coherence: a revision bump (row insert) landing between
   two concurrent waves must flush the materialized scans — the next
   wave serves the new row, never a stale scan. *)
let scan_cache_coherence () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  let pool = Session_pool.create ~capacity:domains conn in
  let sql = "SELECT CUSTOMERID FROM CUSTOMERS" in
  let count_rows () =
    List.map
      (function
        | Ok rs -> Result_set.row_count rs
        | Error e -> raise e)
      (Session_pool.execute_concurrent ~domains ~wait_ms:10_000 pool
         (List.init domains (fun _ -> sql)))
  in
  let before = count_rows () in
  List.iter (Alcotest.(check int) "pre-insert row count" 6) before;
  (* the mid-stress mutation: bumps the table's data version, which
     moves Artifact.data_revision and must invalidate resident scans *)
  let customers =
    match
      Artifact.find_service app ~path:"TestDataServices" ~name:"CUSTOMERS"
    with
    | Some ds -> (
      match Artifact.find_function ds "CUSTOMERS" with
      | Some { Artifact.body = Artifact.Physical t; _ } -> t
      | _ -> Alcotest.fail "CUSTOMERS is not physical")
    | None -> Alcotest.fail "no CUSTOMERS service"
  in
  Table.insert customers
    [ Value.Int 7; Value.Str "Grace"; Value.Str "Geneva"; Value.Int 1 ];
  let after = count_rows () in
  List.iter (Alcotest.(check int) "post-insert row count" 7) after;
  let s = Scan_cache.stats (Connection.scan_cache conn) in
  Alcotest.(check bool)
    "revision bump invalidated resident scans" true
    (s.Scan_cache.invalidations > 0)

(* ------------------------------------------------------------------ *)

(* Pool exhaustion is a typed, bounded error: SQLSTATE 53300. *)
let pool_exhaustion () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  let pool = Session_pool.create ~capacity:1 conn in
  let held = Session_pool.borrow pool in
  (match Session_pool.execute pool "SELECT * FROM CUSTOMERS" with
  | _ -> Alcotest.fail "expected 53300 on an exhausted pool"
  | exception Sqlstate.Error e ->
    Alcotest.(check string)
      "sqlstate" Sqlstate.too_many_connections e.Sqlstate.sqlstate);
  Session_pool.release pool held;
  (* a session is free again: the same call now succeeds *)
  let rs = Session_pool.execute pool "SELECT * FROM CUSTOMERS" in
  Alcotest.(check int) "serves after release" 6 (Result_set.row_count rs);
  let s = Session_pool.stats pool in
  Alcotest.(check int) "one rejection recorded" 1 s.Session_pool.rejections

(* A bounded-wait borrow succeeds once a concurrent holder releases.
   Needs a real second domain (the inline shim would spin forever). *)
let blocking_borrow () =
  if not Mcore.multicore then ()
  else begin
    let app = Helpers.demo_app () in
    let conn = Connection.connect app in
    let pool = Session_pool.create ~capacity:1 conn in
    let held = Session_pool.borrow pool in
    let waiter =
      Mcore.Domains.spawn (fun () ->
          Session_pool.with_session ~wait_ms:10_000 pool (fun s ->
              Session_pool.session_id s))
    in
    (* give the waiter time to start spinning, then release *)
    Unix.sleepf 0.05;
    Session_pool.release pool held;
    let id = Mcore.Domains.join waiter in
    Alcotest.(check int) "waiter got the released session" 0 id;
    let s = Session_pool.stats pool in
    Alcotest.(check bool) "wait recorded" true (s.Session_pool.waits >= 1)
  end

(* ------------------------------------------------------------------ *)

(* Counter parity: with every cache prewarmed, the telemetry counters
   for one workload are a pure function of the workload — the same
   whether it runs on 1 domain or N.  (Domain-local state like the
   hash-join build cache is deliberately excluded: its build counts
   legitimately scale with the domain count.) *)
let counter_parity () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  let run_measured run =
    with_telemetry @@ fun () ->
    run ();
    let m = T.snapshot () in
    ( m.T.translations,
      m.T.cache_hits,
      m.T.cache_misses,
      m.T.rows_emitted,
      m.T.resultset_rows,
      m.T.scan_cache_hits,
      m.T.scan_cache_misses )
  in
  (* prewarm translation, metadata and scan caches *)
  List.iter (fun sql -> ignore (Connection.execute_query conn sql)) workload;
  let sequential =
    run_measured (fun () ->
        List.iter
          (fun sql -> ignore (Connection.execute_query conn sql))
          workload)
  in
  let concurrent =
    run_measured (fun () ->
        List.iter
          (function Ok _ -> () | Error e -> raise e)
          (Connection.execute_concurrent ~domains conn workload))
  in
  let pp (a, b, c, d, e, f, g) =
    Printf.sprintf
      "translations=%d cache_hits=%d cache_misses=%d rows_emitted=%d \
       resultset_rows=%d scan_hits=%d scan_misses=%d"
      a b c d e f g
  in
  Alcotest.(check string)
    "1-domain and 4-domain runs count identically" (pp sequential)
    (pp concurrent)

(* ------------------------------------------------------------------ *)

(* Observability parity: the per-fingerprint stats registry and its
   latency histograms, fed by 4 domains hammering the same workload,
   must account for exactly the observations a sequential replay of
   the same total workload produces — per-domain merges lose nothing
   and double-count nothing.  Durations differ run to run, so the
   oracle compares counts (calls, rows, histogram cardinality), which
   are a pure function of the workload. *)
let observability_parity () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  (* prewarm every cache so both runs see identical hit/miss traffic *)
  List.iter (fun sql -> ignore (Connection.execute_query conn sql)) workload;
  let replay () =
    List.iter (fun sql -> ignore (Connection.execute_query conn sql)) workload
  in
  let measure run =
    with_telemetry @@ fun () ->
    Stats.reset ();
    Stats.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Stats.set_enabled false;
        Stats.reset ())
      (fun () ->
        run ();
        let entries = Stats.entries () in
        (* every recorded observation must be visible in the merged
           total histogram: count = calls, exactly *)
        List.iter
          (fun (e : Stats.entry) ->
            Alcotest.(check int)
              ("histogram count = calls for " ^ e.Stats.fingerprint)
              e.Stats.calls
              (Histogram.count e.Stats.total))
          entries;
        List.sort compare
          (List.map
             (fun (e : Stats.entry) ->
               (e.Stats.fingerprint, e.Stats.calls, e.Stats.rows))
             entries))
  in
  (* same total workload: [domains] sequential replays vs [domains]
     domains each replaying once, concurrently *)
  let sequential =
    measure (fun () ->
        for _ = 1 to domains do
          replay ()
        done)
  in
  let concurrent =
    measure (fun () ->
        List.iter
          (function Ok () -> () | Error e -> raise e)
          (Mcore.Domains.parallel (List.init domains (fun _ -> replay))))
  in
  Alcotest.(check int)
    "both runs saw every fingerprint"
    (List.length sequential) (List.length concurrent);
  List.iter2
    (fun (fp_s, calls_s, rows_s) (fp_c, calls_c, rows_c) ->
      Alcotest.(check string) "fingerprint" fp_s fp_c;
      Alcotest.(check int) ("calls for " ^ fp_s) calls_s calls_c;
      Alcotest.(check int) ("rows for " ^ fp_s) rows_s rows_c)
    sequential concurrent

(* ------------------------------------------------------------------ *)

(* Budgets are domain-local: a tiny per-session budget tripping in one
   domain must not cancel (or be seen by) the query in another. *)
let budget_isolation () =
  let app = Helpers.demo_app () in
  let conn = Connection.connect app in
  let tiny = Budget.limits ~max_rows:1 () in
  let outcomes =
    Mcore.Domains.parallel
      [
        (fun () ->
          match
            Connection.execute_query ~limits:tiny conn
              "SELECT * FROM CUSTOMERS"
          with
          | _ -> `Unexpected_success
          | exception Sqlstate.Error e -> `Tripped e.Sqlstate.sqlstate);
        (fun () ->
          let rs =
            Connection.execute_query ~limits:Budget.no_limits conn
              "SELECT * FROM CUSTOMERS"
          in
          `Rows (Result_set.row_count rs));
      ]
  in
  match outcomes with
  | [ Ok limited; Ok unlimited ] ->
    (match limited with
    | `Tripped code ->
      Alcotest.(check string)
        "bounded session tripped its own governor"
        Sqlstate.configured_limit_exceeded code
    | _ -> Alcotest.fail "bounded session did not trip");
    (match unlimited with
    | `Rows n -> Alcotest.(check int) "unbounded session unaffected" 6 n
    | _ -> Alcotest.fail "unbounded session failed")
  | _ -> Alcotest.fail "a domain died unexpectedly"

let suite =
  ( "concurrency",
    [ Helpers.case "atomic counters survive a 4-domain hammer" counter_hammer;
      Helpers.case "pooled replay matches the sequential oracle" pool_replay;
      Helpers.case "shared-connection replay matches the oracle"
        connection_replay;
      Helpers.case "scan cache stays coherent across a revision bump"
        scan_cache_coherence;
      Helpers.case "exhausted pool raises SQLSTATE 53300" pool_exhaustion;
      Helpers.case "bounded-wait borrow succeeds after a release"
        blocking_borrow;
      Helpers.case "telemetry counters agree between 1 and 4 domains"
        counter_parity;
      Helpers.case "stats registry survives a 4-domain hammer"
        observability_parity;
      Helpers.case "budgets are isolated per domain" budget_isolation ] )
