(* The wire-protocol front end: codec hardening (every byte stream —
   valid, truncated, or garbage — decodes to a value, never an
   exception), and live-server behavior on the multicore build:
   admission shedding, typed per-statement errors that keep the
   session, protocol errors that cost exactly one session, breaker
   fast-rejection, and the SIGTERM-style graceful drain. *)

module Mcore = Aqua_multicore.Mcore
module Failpoint = Aqua_resilience.Failpoint
module Budget = Aqua_resilience.Budget
module Wire = Aqua_net.Wire
module Client = Aqua_net.Client
module Netserver = Aqua_net.Netserver
module Connection = Aqua_driver.Connection

(* ------------------------------------------------------------------ *)
(* Codec *)

let frontend_roundtrip () =
  let buf = Buffer.create 64 in
  Wire.startup_message buf [ ("user", "u"); ("database", "d") ];
  Wire.query_message buf "SELECT 1 FROM T";
  Wire.terminate_message buf;
  let r = Wire.Reader.of_string (Buffer.contents buf) in
  (match Wire.Reader.read_startup r with
  | Ok (Wire.Startup params) ->
    Alcotest.(check (list (pair string string)))
      "startup params"
      [ ("user", "u"); ("database", "d") ]
      params
  | other ->
    Alcotest.failf "startup decoded to %s"
      (match other with Ok _ -> "other frame" | Error e -> Wire.error_to_string e));
  (match Wire.Reader.read_message r with
  | Ok (Wire.Query sql) -> Alcotest.(check string) "query" "SELECT 1 FROM T" sql
  | _ -> Alcotest.fail "expected Query");
  (match Wire.Reader.read_message r with
  | Ok Wire.Terminate -> ()
  | _ -> Alcotest.fail "expected Terminate");
  match Wire.Reader.read_message r with
  | Error Wire.Eof -> ()
  | _ -> Alcotest.fail "expected Eof at stream end"

let backend_roundtrip () =
  let buf = Buffer.create 64 in
  Wire.authentication_ok buf;
  Wire.ready_for_query buf;
  Wire.error_response buf ~severity:"FATAL" ~sqlstate:"53300" "queue full";
  let r = Wire.Reader.of_string (Buffer.contents buf) in
  (match Wire.read_backend r with
  | Ok Wire.B_auth_ok -> ()
  | _ -> Alcotest.fail "expected AuthenticationOk");
  (match Wire.read_backend r with
  | Ok (Wire.B_ready 'I') -> ()
  | _ -> Alcotest.fail "expected ReadyForQuery(idle)");
  match Wire.read_backend r with
  | Ok (Wire.B_error fields) ->
    Alcotest.(check (option string))
      "sqlstate field" (Some "53300")
      (List.assoc_opt 'C' fields);
    Alcotest.(check (option string))
      "message field" (Some "queue full")
      (List.assoc_opt 'M' fields)
  | _ -> Alcotest.fail "expected ErrorResponse"

(* Every strict prefix of a valid frame is a typed error — truncation
   can never crash the decoder or be mistaken for a parse. *)
let truncation_is_typed () =
  let buf = Buffer.create 64 in
  Wire.query_message buf "SELECT CUSTOMERID FROM CUSTOMERS";
  let full = Buffer.contents buf in
  for len = 0 to String.length full - 1 do
    let r = Wire.Reader.of_string (String.sub full 0 len) in
    match Wire.Reader.read_message r with
    | Ok _ -> Alcotest.failf "prefix of %d bytes parsed as a frame" len
    | Error (Wire.Eof | Wire.Malformed _ | Wire.Oversized _ | Wire.Timeout)
      ->
      ()
  done;
  let r = Wire.Reader.of_string full in
  match Wire.Reader.read_message r with
  | Ok (Wire.Query _) -> ()
  | _ -> Alcotest.fail "full frame no longer parses"

let oversized_frame_rejected () =
  (* 'Q' + length 0x7fffffff: a garbage length prefix must be refused
     before any allocation, as Oversized *)
  let r =
    Wire.Reader.of_string ~max_frame:1024 "Q\x7f\xff\xff\xff the rest"
  in
  match Wire.Reader.read_message r with
  | Error (Wire.Oversized { max = 1024; _ }) -> ()
  | Ok _ -> Alcotest.fail "oversized frame parsed"
  | Error e -> Alcotest.failf "expected Oversized, got %s" (Wire.error_to_string e)

(* Random byte streams: the decoder's only possible outcomes are a
   parsed message or a typed error, for as many frames as the bytes
   contain.  QCheck reports any escaping exception as a failure. *)
let garbage_never_crashes =
  QCheck.Test.make ~name:"decoder survives arbitrary byte streams"
    ~count:500 QCheck.string (fun bytes ->
      let startup_reader = Wire.Reader.of_string ~max_frame:4096 bytes in
      (match Wire.Reader.read_startup startup_reader with
      | Ok _ | Error _ -> ());
      let r = Wire.Reader.of_string ~max_frame:4096 bytes in
      let rec walk n =
        if n = 0 then true
        else
          match Wire.Reader.read_message r with
          | Ok _ -> walk (n - 1)
          | Error _ -> true
      in
      walk 64)

(* ------------------------------------------------------------------ *)
(* Live server (multicore only: Netserver.start needs domains) *)

let with_server ?(config = Netserver.default_config) ?(scan_cache = true) f =
  let app = Helpers.demo_app () in
  let conn = Connection.connect ~scan_cache app in
  let t = Netserver.start ~config:{ config with port = 0 } conn in
  Fun.protect ~finally:(fun () -> Netserver.drain t) (fun () -> f t)

let connect_ok t =
  match Client.connect ~host:"127.0.0.1" ~port:(Netserver.port t) () with
  | Ok c -> c
  | Error (code, msg) -> Alcotest.failf "connect refused: %s %s" code msg

let expect_rows c sql n =
  match Client.query c sql with
  | Ok reply ->
    Alcotest.(check int) ("rows of " ^ sql) n (List.length reply.Client.rows);
    Alcotest.(check string)
      ("tag of " ^ sql)
      (Printf.sprintf "SELECT %d" n)
      reply.Client.tag
  | Error (code, msg) -> Alcotest.failf "%s failed: %s %s" sql code msg

let serve_basic () =
  if not Mcore.multicore then ()
  else
    with_server @@ fun t ->
    let c = connect_ok t in
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* a typed statement error costs the statement, not the session *)
    (match Client.query c "SELECT X FROM NO_SUCH_TABLE" with
    | Error ("42P01", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 42P01, got %s %s" code msg
    | Ok _ -> Alcotest.fail "expected undefined-table error");
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* empty query: the protocol's dedicated response, session intact *)
    (match Client.query c "   " with
    | Ok reply -> Alcotest.(check string) "empty tag" "" reply.Client.tag
    | Error (code, msg) -> Alcotest.failf "empty query failed: %s %s" code msg);
    expect_rows c "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = 2" 1;
    Client.close c;
    let s = Netserver.summary t in
    Alcotest.(check bool) "queries served" true (s.Netserver.queries >= 3)

(* A garbage frame is session-scoped: FATAL 08P01 on that socket, any
   other session keeps working. *)
let protocol_error_scoped () =
  if not Mcore.multicore then ()
  else
    with_server @@ fun t ->
    let healthy = connect_ok t in
    expect_rows healthy "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* hand-rolled socket so we can write raw garbage post-handshake *)
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_loopback, Netserver.port t));
    let buf = Buffer.create 64 in
    Wire.startup_message buf [ ("user", "garbage") ];
    ignore
      (Unix.write_substring fd (Buffer.contents buf) 0 (Buffer.length buf));
    let reader = Wire.Reader.of_fd fd in
    let rec to_ready () =
      match Wire.read_backend reader with
      | Ok (Wire.B_ready _) -> ()
      | Ok _ -> to_ready ()
      | Error e -> Alcotest.failf "greeting failed: %s" (Wire.error_to_string e)
    in
    to_ready ();
    (* type byte 0x01 is not a letter: Malformed, FATAL 08P01, close *)
    ignore (Unix.write_substring fd "\x01\x00\x00\x00\x04" 0 5);
    let rec find_error () =
      match Wire.read_backend reader with
      | Ok (Wire.B_error fields) ->
        Alcotest.(check (option string))
          "protocol violation" (Some "08P01")
          (List.assoc_opt 'C' fields)
      | Ok _ -> find_error ()
      | Error e ->
        Alcotest.failf "expected 08P01, got %s" (Wire.error_to_string e)
    in
    find_error ();
    (match Wire.read_backend reader with
    | Error Wire.Eof -> ()
    | Ok _ | Error _ -> Alcotest.fail "expected close after FATAL 08P01");
    Unix.close fd;
    (* the healthy session never noticed *)
    expect_rows healthy "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    Client.close healthy;
    let s = Netserver.summary t in
    Alcotest.(check bool) "protocol error counted" true
      (s.Netserver.protocol_errors >= 1)

(* Queue-depth admission: one worker pinned by a live session, one
   queue slot taken — the next connection is refused 53300 before any
   work, and the queued one is served once the worker frees up. *)
let queue_admission_shed () =
  if not Mcore.multicore then ()
  else
    let config =
      { Netserver.default_config with
        pool_size = 1;
        workers = 1;
        queue_depth = 1;
      }
    in
    with_server ~config @@ fun t ->
    let a = connect_ok t in
    expect_rows a "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* b waits in the queue: its connect blocks until a worker greets *)
    let b =
      Mcore.Domains.spawn (fun () ->
          Client.connect ~host:"127.0.0.1" ~port:(Netserver.port t) ())
    in
    Unix.sleepf 0.1;
    (* the queue is now full: c must be shed with 53300 in one round trip *)
    (match Client.connect ~host:"127.0.0.1" ~port:(Netserver.port t) () with
    | Error ("53300", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 53300, got %s %s" code msg
    | Ok c ->
      Client.close c;
      Alcotest.fail "expected queue-full shed");
    (* a finishes; the worker picks b out of the queue and serves it *)
    Client.close a;
    (match Mcore.Domains.join b with
    | Ok c ->
      expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
      Client.close c
    | Error (code, msg) -> Alcotest.failf "queued connect failed: %s %s" code msg);
    let s = Netserver.summary t in
    Alcotest.(check bool) "shed counted" true (s.Netserver.shed_queue >= 1)

(* Graceful drain: a live session's next query is refused 57P01, a
   queued connection is refused 57P03, and everything that was
   admitted before the drain already has its full response. *)
let drain_semantics () =
  if not Mcore.multicore then ()
  else begin
    let config =
      { Netserver.default_config with
        pool_size = 1;
        workers = 1;
        queue_depth = 4;
      }
    in
    let app = Helpers.demo_app () in
    let conn = Connection.connect app in
    let t = Netserver.start ~config:{ config with port = 0 } conn in
    let a = connect_ok t in
    expect_rows a "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* b sits in the queue behind a's session *)
    let b =
      Mcore.Domains.spawn (fun () ->
          Client.connect ~host:"127.0.0.1" ~port:(Netserver.port t) ())
    in
    Unix.sleepf 0.1;
    Netserver.request_drain t;
    Alcotest.(check bool) "draining" true (Netserver.draining t);
    (* the live session is told to go away, with the admin code *)
    (match Client.query a "SELECT CUSTOMERID FROM CUSTOMERS" with
    | Error ("57P01", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 57P01, got %s %s" code msg
    | Ok _ -> Alcotest.fail "expected drain refusal on live session");
    Client.close a;
    (* the queued connection never gets a session: 57P03 *)
    (match Mcore.Domains.join b with
    | Error ("57P03", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 57P03, got %s %s" code msg
    | Ok c ->
      Client.close c;
      Alcotest.fail "expected drain refusal on queued connection");
    Netserver.drain t;
    let s = Netserver.summary t in
    Alcotest.(check bool) "drain sheds counted" true
      (s.Netserver.shed_drain >= 2);
    Alcotest.(check int) "every admitted query answered" 1
      s.Netserver.queries
  end

(* An open breaker fast-rejects at admission (08006 in microseconds,
   no pool session burned) but must NOT starve the half-open trial:
   after the cooldown a query flows through and closes the breaker. *)
let breaker_fast_reject () =
  if not Mcore.multicore then ()
  else
    (* scan cache off: a cached scan would serve rows without invoking
       the data service, so the armed failpoint would never fire *)
    with_server ~scan_cache:false @@ fun t ->
    let c = connect_ok t in
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    Failpoint.arm "dsp.invoke=fail";
    Fun.protect ~finally:Failpoint.disarm (fun () ->
        (* hammer until the breaker opens and the admission gate sheds *)
        let shed = ref false in
        let attempts = ref 0 in
        while (not !shed) && !attempts < 50 do
          incr attempts;
          match Client.query c "SELECT CUSTOMERID FROM CUSTOMERS" with
          | Ok _ -> Alcotest.fail "armed failpoint produced rows"
          | Error ("08006", msg) ->
            if Helpers.contains ~needle:"circuit open" msg then shed := true
          | Error ("08004", _) -> ()
          | Error (code, msg) ->
            Alcotest.failf "unexpected code under faults: %s %s" code msg
        done;
        Alcotest.(check bool) "admission gate shed on open breaker" true
          !shed);
    (* past the cooldown the half-open trial must be admitted *)
    Unix.sleepf 0.15;
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    Client.close c;
    let s = Netserver.summary t in
    Alcotest.(check bool) "breaker sheds counted" true
      (s.Netserver.shed_breaker >= 1)

let suite =
  ( "net",
    [ Helpers.case "frontend frames round-trip" frontend_roundtrip;
      Helpers.case "backend frames round-trip" backend_roundtrip;
      Helpers.case "truncated frames are typed errors" truncation_is_typed;
      Helpers.case "oversized frames are refused" oversized_frame_rejected;
      Helpers.qcheck garbage_never_crashes;
      Helpers.case "serves queries over the wire" serve_basic;
      Helpers.case "protocol errors are session-scoped" protocol_error_scoped;
      Helpers.case "full queue sheds with 53300" queue_admission_shed;
      Helpers.case "graceful drain: 57P01/57P03, no lost queries"
        drain_semantics;
      Helpers.case "open breaker fast-rejects, half-open admitted"
        breaker_fast_reject ] )
