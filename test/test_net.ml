(* The wire-protocol front end: codec hardening (every byte stream —
   valid, truncated, or garbage — decodes to a value, never an
   exception), and live-server behavior on the multicore build:
   admission shedding, typed per-statement errors that keep the
   session, protocol errors that cost exactly one session, breaker
   fast-rejection, and the SIGTERM-style graceful drain. *)

module Mcore = Aqua_multicore.Mcore
module Failpoint = Aqua_resilience.Failpoint
module Budget = Aqua_resilience.Budget
module Wire = Aqua_net.Wire
module Client = Aqua_net.Client
module Netserver = Aqua_net.Netserver
module Connection = Aqua_driver.Connection
module Telemetry = Aqua_core.Telemetry
module Json = Aqua_core.Json
module Stats = Aqua_obs.Stats
module Expose = Aqua_obs.Expose

(* ------------------------------------------------------------------ *)
(* Codec *)

let frontend_roundtrip () =
  let buf = Buffer.create 64 in
  Wire.startup_message buf [ ("user", "u"); ("database", "d") ];
  Wire.query_message buf "SELECT 1 FROM T";
  Wire.terminate_message buf;
  let r = Wire.Reader.of_string (Buffer.contents buf) in
  (match Wire.Reader.read_startup r with
  | Ok (Wire.Startup params) ->
    Alcotest.(check (list (pair string string)))
      "startup params"
      [ ("user", "u"); ("database", "d") ]
      params
  | other ->
    Alcotest.failf "startup decoded to %s"
      (match other with Ok _ -> "other frame" | Error e -> Wire.error_to_string e));
  (match Wire.Reader.read_message r with
  | Ok (Wire.Query sql) -> Alcotest.(check string) "query" "SELECT 1 FROM T" sql
  | _ -> Alcotest.fail "expected Query");
  (match Wire.Reader.read_message r with
  | Ok Wire.Terminate -> ()
  | _ -> Alcotest.fail "expected Terminate");
  match Wire.Reader.read_message r with
  | Error Wire.Eof -> ()
  | _ -> Alcotest.fail "expected Eof at stream end"

let backend_roundtrip () =
  let buf = Buffer.create 64 in
  Wire.authentication_ok buf;
  Wire.ready_for_query buf;
  Wire.error_response buf ~severity:"FATAL" ~sqlstate:"53300" "queue full";
  let r = Wire.Reader.of_string (Buffer.contents buf) in
  (match Wire.read_backend r with
  | Ok Wire.B_auth_ok -> ()
  | _ -> Alcotest.fail "expected AuthenticationOk");
  (match Wire.read_backend r with
  | Ok (Wire.B_ready 'I') -> ()
  | _ -> Alcotest.fail "expected ReadyForQuery(idle)");
  match Wire.read_backend r with
  | Ok (Wire.B_error fields) ->
    Alcotest.(check (option string))
      "sqlstate field" (Some "53300")
      (List.assoc_opt 'C' fields);
    Alcotest.(check (option string))
      "message field" (Some "queue full")
      (List.assoc_opt 'M' fields)
  | _ -> Alcotest.fail "expected ErrorResponse"

(* Every strict prefix of a valid frame is a typed error — truncation
   can never crash the decoder or be mistaken for a parse. *)
let truncation_is_typed () =
  let buf = Buffer.create 64 in
  Wire.query_message buf "SELECT CUSTOMERID FROM CUSTOMERS";
  let full = Buffer.contents buf in
  for len = 0 to String.length full - 1 do
    let r = Wire.Reader.of_string (String.sub full 0 len) in
    match Wire.Reader.read_message r with
    | Ok _ -> Alcotest.failf "prefix of %d bytes parsed as a frame" len
    | Error (Wire.Eof | Wire.Malformed _ | Wire.Oversized _ | Wire.Timeout)
      ->
      ()
  done;
  let r = Wire.Reader.of_string full in
  match Wire.Reader.read_message r with
  | Ok (Wire.Query _) -> ()
  | _ -> Alcotest.fail "full frame no longer parses"

let oversized_frame_rejected () =
  (* 'Q' + length 0x7fffffff: a garbage length prefix must be refused
     before any allocation, as Oversized *)
  let r =
    Wire.Reader.of_string ~max_frame:1024 "Q\x7f\xff\xff\xff the rest"
  in
  match Wire.Reader.read_message r with
  | Error (Wire.Oversized { max = 1024; _ }) -> ()
  | Ok _ -> Alcotest.fail "oversized frame parsed"
  | Error e -> Alcotest.failf "expected Oversized, got %s" (Wire.error_to_string e)

(* Random byte streams: the decoder's only possible outcomes are a
   parsed message or a typed error, for as many frames as the bytes
   contain.  QCheck reports any escaping exception as a failure. *)
let garbage_never_crashes =
  QCheck.Test.make ~name:"decoder survives arbitrary byte streams"
    ~count:500 QCheck.string (fun bytes ->
      let startup_reader = Wire.Reader.of_string ~max_frame:4096 bytes in
      (match Wire.Reader.read_startup startup_reader with
      | Ok _ | Error _ -> ());
      let r = Wire.Reader.of_string ~max_frame:4096 bytes in
      let rec walk n =
        if n = 0 then true
        else
          match Wire.Reader.read_message r with
          | Ok _ -> walk (n - 1)
          | Error _ -> true
      in
      walk 64)

(* ------------------------------------------------------------------ *)
(* Live server (multicore only: Netserver.start needs domains) *)

let with_server ?(config = Netserver.default_config) ?(scan_cache = true) f =
  let app = Helpers.demo_app () in
  let conn = Connection.connect ~scan_cache app in
  let t = Netserver.start ~config:{ config with port = 0 } conn in
  Fun.protect ~finally:(fun () -> Netserver.drain t) (fun () -> f t)

let connect_ok t =
  match Client.connect ~host:"127.0.0.1" ~port:(Netserver.port t) () with
  | Ok c -> c
  | Error (code, msg) -> Alcotest.failf "connect refused: %s %s" code msg

let expect_rows c sql n =
  match Client.query c sql with
  | Ok reply ->
    Alcotest.(check int) ("rows of " ^ sql) n (List.length reply.Client.rows);
    Alcotest.(check string)
      ("tag of " ^ sql)
      (Printf.sprintf "SELECT %d" n)
      reply.Client.tag
  | Error (code, msg) -> Alcotest.failf "%s failed: %s %s" sql code msg

let serve_basic () =
  if not Mcore.multicore then ()
  else
    with_server @@ fun t ->
    let c = connect_ok t in
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* a typed statement error costs the statement, not the session *)
    (match Client.query c "SELECT X FROM NO_SUCH_TABLE" with
    | Error ("42P01", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 42P01, got %s %s" code msg
    | Ok _ -> Alcotest.fail "expected undefined-table error");
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* empty query: the protocol's dedicated response, session intact *)
    (match Client.query c "   " with
    | Ok reply -> Alcotest.(check string) "empty tag" "" reply.Client.tag
    | Error (code, msg) -> Alcotest.failf "empty query failed: %s %s" code msg);
    expect_rows c "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = 2" 1;
    Client.close c;
    let s = Netserver.summary t in
    Alcotest.(check bool) "queries served" true (s.Netserver.queries >= 3)

(* A garbage frame is session-scoped: FATAL 08P01 on that socket, any
   other session keeps working. *)
let protocol_error_scoped () =
  if not Mcore.multicore then ()
  else
    with_server @@ fun t ->
    let healthy = connect_ok t in
    expect_rows healthy "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* hand-rolled socket so we can write raw garbage post-handshake *)
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_loopback, Netserver.port t));
    let buf = Buffer.create 64 in
    Wire.startup_message buf [ ("user", "garbage") ];
    ignore
      (Unix.write_substring fd (Buffer.contents buf) 0 (Buffer.length buf));
    let reader = Wire.Reader.of_fd fd in
    let rec to_ready () =
      match Wire.read_backend reader with
      | Ok (Wire.B_ready _) -> ()
      | Ok _ -> to_ready ()
      | Error e -> Alcotest.failf "greeting failed: %s" (Wire.error_to_string e)
    in
    to_ready ();
    (* type byte 0x01 is not a letter: Malformed, FATAL 08P01, close *)
    ignore (Unix.write_substring fd "\x01\x00\x00\x00\x04" 0 5);
    let rec find_error () =
      match Wire.read_backend reader with
      | Ok (Wire.B_error fields) ->
        Alcotest.(check (option string))
          "protocol violation" (Some "08P01")
          (List.assoc_opt 'C' fields)
      | Ok _ -> find_error ()
      | Error e ->
        Alcotest.failf "expected 08P01, got %s" (Wire.error_to_string e)
    in
    find_error ();
    (match Wire.read_backend reader with
    | Error Wire.Eof -> ()
    | Ok _ | Error _ -> Alcotest.fail "expected close after FATAL 08P01");
    Unix.close fd;
    (* the healthy session never noticed *)
    expect_rows healthy "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    Client.close healthy;
    let s = Netserver.summary t in
    Alcotest.(check bool) "protocol error counted" true
      (s.Netserver.protocol_errors >= 1)

(* Queue-depth admission: one worker pinned by a live session, one
   queue slot taken — the next connection is refused 53300 before any
   work, and the queued one is served once the worker frees up. *)
let queue_admission_shed () =
  if not Mcore.multicore then ()
  else
    let config =
      { Netserver.default_config with
        pool_size = 1;
        workers = 1;
        queue_depth = 1;
      }
    in
    with_server ~config @@ fun t ->
    let a = connect_ok t in
    expect_rows a "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* b waits in the queue: its connect blocks until a worker greets *)
    let b =
      Mcore.Domains.spawn (fun () ->
          Client.connect ~host:"127.0.0.1" ~port:(Netserver.port t) ())
    in
    Unix.sleepf 0.1;
    (* the queue is now full: c must be shed with 53300 in one round trip *)
    (match Client.connect ~host:"127.0.0.1" ~port:(Netserver.port t) () with
    | Error ("53300", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 53300, got %s %s" code msg
    | Ok c ->
      Client.close c;
      Alcotest.fail "expected queue-full shed");
    (* a finishes; the worker picks b out of the queue and serves it *)
    Client.close a;
    (match Mcore.Domains.join b with
    | Ok c ->
      expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
      Client.close c
    | Error (code, msg) -> Alcotest.failf "queued connect failed: %s %s" code msg);
    let s = Netserver.summary t in
    Alcotest.(check bool) "shed counted" true (s.Netserver.shed_queue >= 1)

(* Graceful drain: a live session's next query is refused 57P01, a
   queued connection is refused 57P03, and everything that was
   admitted before the drain already has its full response. *)
let drain_semantics () =
  if not Mcore.multicore then ()
  else begin
    let config =
      { Netserver.default_config with
        pool_size = 1;
        workers = 1;
        queue_depth = 4;
      }
    in
    let app = Helpers.demo_app () in
    let conn = Connection.connect app in
    let t = Netserver.start ~config:{ config with port = 0 } conn in
    let a = connect_ok t in
    expect_rows a "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* b sits in the queue behind a's session *)
    let b =
      Mcore.Domains.spawn (fun () ->
          Client.connect ~host:"127.0.0.1" ~port:(Netserver.port t) ())
    in
    Unix.sleepf 0.1;
    Netserver.request_drain t;
    Alcotest.(check bool) "draining" true (Netserver.draining t);
    (* the live session is told to go away, with the admin code *)
    (match Client.query a "SELECT CUSTOMERID FROM CUSTOMERS" with
    | Error ("57P01", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 57P01, got %s %s" code msg
    | Ok _ -> Alcotest.fail "expected drain refusal on live session");
    Client.close a;
    (* the queued connection never gets a session: 57P03 *)
    (match Mcore.Domains.join b with
    | Error ("57P03", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 57P03, got %s %s" code msg
    | Ok c ->
      Client.close c;
      Alcotest.fail "expected drain refusal on queued connection");
    Netserver.drain t;
    let s = Netserver.summary t in
    Alcotest.(check bool) "drain sheds counted" true
      (s.Netserver.shed_drain >= 2);
    Alcotest.(check int) "every admitted query answered" 1
      s.Netserver.queries
  end

(* An open breaker fast-rejects at admission (08006 in microseconds,
   no pool session burned) but must NOT starve the half-open trial:
   after the cooldown a query flows through and closes the breaker. *)
let breaker_fast_reject () =
  if not Mcore.multicore then ()
  else
    (* scan cache off: a cached scan would serve rows without invoking
       the data service, so the armed failpoint would never fire *)
    with_server ~scan_cache:false @@ fun t ->
    let c = connect_ok t in
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    Failpoint.arm "dsp.invoke=fail";
    Fun.protect ~finally:Failpoint.disarm (fun () ->
        (* hammer until the breaker opens and the admission gate sheds *)
        let shed = ref false in
        let attempts = ref 0 in
        while (not !shed) && !attempts < 50 do
          incr attempts;
          match Client.query c "SELECT CUSTOMERID FROM CUSTOMERS" with
          | Ok _ -> Alcotest.fail "armed failpoint produced rows"
          | Error ("08006", msg) ->
            if Helpers.contains ~needle:"circuit open" msg then shed := true
          | Error ("08004", _) -> ()
          | Error (code, msg) ->
            Alcotest.failf "unexpected code under faults: %s %s" code msg
        done;
        Alcotest.(check bool) "admission gate shed on open breaker" true
          !shed);
    (* past the cooldown the half-open trial must be admitted *)
    Unix.sleepf 0.15;
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    Client.close c;
    let s = Netserver.summary t in
    Alcotest.(check bool) "breaker sheds counted" true
      (s.Netserver.shed_breaker >= 1)

(* ------------------------------------------------------------------ *)
(* Trace context over the wire *)

(* Collect NDJSON trace lines emitted by worker domains; the sink runs
   under the telemetry lock, so only our own list needs one. *)
let with_trace_capture f =
  let lines = ref [] in
  let lk = Mcore.Mutex.create () in
  Telemetry.set_enabled true;
  Telemetry.set_trace_sink
    (Some (fun l -> Mcore.Mutex.protect lk (fun () -> lines := l :: !lines)));
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_trace_sink None;
      Telemetry.set_enabled false)
    (fun () ->
      f (fun () -> Mcore.Mutex.protect lk (fun () -> lines := [])) (fun () ->
          Mcore.Mutex.protect lk (fun () -> List.rev !lines)))

let span_traces lines =
  List.filter_map
    (fun line ->
      let j = Json.parse line in
      match (Json.member "ev" j, Json.member "trace" j) with
      | Some (Json.Str "span"), Some (Json.Str id) ->
        Some
          ( (match Json.member "name" j with
            | Some (Json.Str n) -> n
            | _ -> ""),
            id )
      | _ -> None)
    lines

(* The response flushes from inside the net.query span, so the client
   can see its reply a beat before the span line lands in the sink:
   poll until the predicate holds (or a bound expires, and the caller's
   assertion reports what was actually captured). *)
let rec spans_until collect pred tries =
  let spans = span_traces (collect ()) in
  if pred spans || tries = 0 then spans
  else begin
    Unix.sleepf 0.02;
    spans_until collect pred (tries - 1)
  end

let trace_over_wire () =
  if not Mcore.multicore then ()
  else
    with_trace_capture @@ fun clear collect ->
    let config = { Netserver.default_config with trace_sample = 1.0 } in
    with_server ~config @@ fun t ->
    let c = connect_ok t in
    (* a client-supplied traceparent comment tags every span of the
       query with that id, comment stripped before translation *)
    expect_rows c
      "/*traceparent:wire-trace-1*/ SELECT CUSTOMERID FROM CUSTOMERS" 6;
    let spans =
      spans_until collect
        (List.mem ("net.query", "wire-trace-1"))
        50
    in
    Alcotest.(check bool) "net.query span carries the client id" true
      (List.mem ("net.query", "wire-trace-1") spans);
    Alcotest.(check bool) "translator spans inherit the id" true
      (List.mem ("translate.parse", "wire-trace-1") spans);
    List.iter
      (fun (name, id) ->
        Alcotest.(check string) ("one trace id on " ^ name) "wire-trace-1" id)
      spans;
    (* without the comment a 16-hex id is minted, one per query *)
    clear ();
    expect_rows c "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = 2" 1;
    let spans =
      spans_until collect
        (List.exists (fun (name, _) -> name = "net.query"))
        50
    in
    let ids = List.sort_uniq compare (List.map snd spans) in
    (match ids with
    | [ id ] ->
      Alcotest.(check int) "minted id is 16 hex chars" 16 (String.length id);
      String.iter
        (fun ch ->
          if not ((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) then
            Alcotest.failf "non-hex minted id %s" id)
        id
    | ids -> Alcotest.failf "expected one trace id, got %d" (List.length ids));
    Client.close c

let trace_sampling_zero_is_silent () =
  if not Mcore.multicore then ()
  else
    with_trace_capture @@ fun clear collect ->
    (* default config: trace_sample = 0.0 *)
    with_server @@ fun t ->
    let c = connect_ok t in
    clear ();
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (* give a straggling span line the chance to prove us wrong *)
    Unix.sleepf 0.1;
    Alcotest.(check (list (pair string string)))
      "0%% sampling emits no span lines" [] (span_traces (collect ()));
    Client.close c

(* ------------------------------------------------------------------ *)
(* aqua_stat_* virtual tables *)

let stat_tables_over_wire () =
  if not Mcore.multicore then ()
  else begin
    Stats.reset ();
    Stats.set_enabled true;
    Telemetry.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Telemetry.set_enabled false;
        Stats.set_enabled false;
        Stats.reset ())
    @@ fun () ->
    with_server @@ fun t ->
    let c = connect_ok t in
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    (match Client.query c "SELECT * FROM aqua_stat_statements" with
    | Ok r ->
      Alcotest.(check (list string))
        "statements columns"
        [ "fingerprint"; "query"; "calls"; "rows"; "cache_hits"; "errors";
          "mean_ms"; "p50_ms"; "p99_ms"; "total_ms" ]
        r.Client.columns;
      let row =
        List.find_opt
          (fun row ->
            List.nth row 1 = Some "SELECT CUSTOMERID FROM CUSTOMERS")
          r.Client.rows
      in
      (match row with
      | Some row ->
        Alcotest.(check (option string)) "calls counted" (Some "2")
          (List.nth row 2);
        Alcotest.(check (option string)) "rows counted" (Some "12")
          (List.nth row 3)
      | None -> Alcotest.fail "replayed fingerprint missing from statements")
    | Error (code, msg) ->
      Alcotest.failf "aqua_stat_statements failed: %s %s" code msg);
    (* case-insensitive, trailing semicolon, nothing else in flight *)
    (match Client.query c "  select * from AQUA_STAT_ACTIVITY ; " with
    | Ok r ->
      Alcotest.(check (list string))
        "activity columns"
        [ "pid"; "state"; "query"; "fingerprint"; "elapsed_ms"; "trace_id" ]
        r.Client.columns;
      Alcotest.(check int) "no queries in flight" 0 (List.length r.Client.rows)
    | Error (code, msg) ->
      Alcotest.failf "aqua_stat_activity failed: %s %s" code msg);
    (match Client.query c "SELECT * FROM aqua_stat_breakers" with
    | Ok r ->
      Alcotest.(check (list string))
        "breakers columns"
        [ "function"; "state"; "rejecting"; "trips"; "recoveries";
          "rejections" ]
        r.Client.columns;
      (match r.Client.rows with
      | row :: _ ->
        Alcotest.(check (option string)) "breaker closed" (Some "closed")
          (List.nth row 1);
        Alcotest.(check (option string)) "not rejecting" (Some "false")
          (List.nth row 2)
      | [] -> Alcotest.fail "no breakers listed after a served query")
    | Error (code, msg) ->
      Alcotest.failf "aqua_stat_breakers failed: %s %s" code msg);
    (* a near-miss stays SQL: unknown table, not a silent empty set *)
    (match Client.query c "SELECT pid FROM aqua_stat_activity" with
    | Error ("42P01", _) -> ()
    | Error (code, msg) -> Alcotest.failf "expected 42P01, got %s %s" code msg
    | Ok _ -> Alcotest.fail "projected stat query must not match the table");
    Client.close c
  end

(* ------------------------------------------------------------------ *)
(* HTTP admin plane *)

let http_get port path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  let raw = Buffer.contents b in
  let status =
    try Scanf.sscanf raw "HTTP/1.0 %d" (fun d -> d)
    with Scanf.Scan_failure _ | End_of_file -> -1
  in
  let body =
    let rec find i =
      if i + 4 > String.length raw then ""
      else if String.sub raw i 4 = "\r\n\r\n" then
        String.sub raw (i + 4) (String.length raw - i - 4)
      else find (i + 1)
    in
    find 0
  in
  (status, body)

let admin_plane () =
  if not Mcore.multicore then ()
  else
    let config = { Netserver.default_config with admin_port = Some 0 } in
    with_server ~config @@ fun t ->
    let ap =
      match Netserver.admin_port t with
      | Some p -> p
      | None -> Alcotest.fail "admin plane not started"
    in
    let c = connect_ok t in
    expect_rows c "SELECT CUSTOMERID FROM CUSTOMERS" 6;
    let status, metrics = http_get ap "/metrics" in
    Alcotest.(check int) "metrics 200" 200 status;
    Alcotest.(check (list string)) "scrape lints clean" []
      (Expose.lint metrics);
    Alcotest.(check bool) "queue-depth gauge scraped" true
      (Helpers.contains ~needle:"# TYPE aqua_net_queue_depth gauge" metrics);
    Alcotest.(check bool) "pool gauge scraped" true
      (Helpers.contains ~needle:"aqua_session_pool_in_use" metrics);
    let status, health = http_get ap "/healthz" in
    Alcotest.(check int) "healthz 200" 200 status;
    (match Json.member "status" (Json.parse health) with
    | Some (Json.Str "ok") -> ()
    | _ -> Alcotest.failf "unexpected healthz body: %s" health);
    let status, statusz = http_get ap "/statusz" in
    Alcotest.(check int) "statusz 200" 200 status;
    let j = Json.parse statusz in
    (match Json.member "draining" j with
    | Some (Json.Bool false) -> ()
    | _ -> Alcotest.fail "statusz lacks draining:false");
    (match Json.member "pool" j with
    | Some (Json.Obj fields) ->
      Alcotest.(check bool) "pool capacity reported" true
        (List.mem_assoc "capacity" fields)
    | _ -> Alcotest.fail "statusz lacks the pool object");
    (match Json.member "breakers" j with
    | Some (Json.Arr (_ :: _)) -> ()
    | _ -> Alcotest.fail "statusz lacks breakers");
    let status, _ = http_get ap "/nope" in
    Alcotest.(check int) "unknown path is 404" 404 status;
    Client.close c;
    (* the admin plane reports the drain, and keeps answering *)
    Netserver.request_drain t;
    let status, health = http_get ap "/healthz" in
    Alcotest.(check int) "draining healthz 503" 503 status;
    match Json.member "status" (Json.parse health) with
    | Some (Json.Str "draining") -> ()
    | _ -> Alcotest.failf "unexpected draining body: %s" health

let suite =
  ( "net",
    [ Helpers.case "frontend frames round-trip" frontend_roundtrip;
      Helpers.case "backend frames round-trip" backend_roundtrip;
      Helpers.case "truncated frames are typed errors" truncation_is_typed;
      Helpers.case "oversized frames are refused" oversized_frame_rejected;
      Helpers.qcheck garbage_never_crashes;
      Helpers.case "serves queries over the wire" serve_basic;
      Helpers.case "protocol errors are session-scoped" protocol_error_scoped;
      Helpers.case "full queue sheds with 53300" queue_admission_shed;
      Helpers.case "graceful drain: 57P01/57P03, no lost queries"
        drain_semantics;
      Helpers.case "open breaker fast-rejects, half-open admitted"
        breaker_fast_reject;
      Helpers.case "trace ids propagate over the wire" trace_over_wire;
      Helpers.case "zero sampling emits no trace lines"
        trace_sampling_zero_is_silent;
      Helpers.case "aqua_stat_* virtual tables answer over the wire"
        stat_tables_over_wire;
      Helpers.case "admin plane: /metrics, /healthz, /statusz" admin_plane ] )
