(* Observability layer: histogram percentile accuracy (qcheck),
   fingerprint normalization goldens, the per-fingerprint stats
   registry fed by the driver, flight-recorder ring bounding, the
   dump-on-error path under an env-armed failpoint, and the Prometheus
   exposition against its own linter. *)

module Histogram = Aqua_obs.Histogram
module Fingerprint = Aqua_obs.Fingerprint
module Stats = Aqua_obs.Stats
module Recorder = Aqua_obs.Recorder
module Expose = Aqua_obs.Expose
module Telemetry = Aqua_core.Telemetry
module Json = Aqua_core.Json
module Connection = Aqua_driver.Connection
module Sqlstate = Aqua_resilience.Sqlstate
module Failpoint = Aqua_resilience.Failpoint

let case = Helpers.case
let has haystack needle = Helpers.contains ~needle haystack

(* Obs state is global; every test that touches it starts clean and
   restores the always-on defaults (stats off, recorder on). *)
let with_obs f =
  Stats.reset ();
  Stats.set_enabled true;
  Recorder.clear ();
  Recorder.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Stats.set_enabled false;
      Stats.uninstall_span_histograms ();
      Stats.reset ();
      Recorder.set_dump_sink None;
      Recorder.clear ())
    f

(* --- histogram ------------------------------------------------------ *)

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check bool) "fresh is empty" true (Histogram.is_empty h);
  Alcotest.(check int64) "empty p99" 0L (Histogram.p99 h);
  List.iter (fun v -> Histogram.record h v) [ 5L; 5L; 17L; 1_000L; 123_456L ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int64) "total" 124_483L (Histogram.total h);
  Alcotest.(check int64) "min" 5L (Histogram.min_value h);
  Alcotest.(check int64) "max" 123_456L (Histogram.max_value h);
  Alcotest.(check int64) "p100 is the exact max" 123_456L
    (Histogram.percentile h 100.0);
  (* identity region: values below [subbuckets] are exact *)
  Alcotest.(check int64) "small values are exact" 5L
    (Histogram.percentile h 40.0);
  Histogram.record h (-3L);
  Alcotest.(check int64) "negative clamps to 0" 0L (Histogram.min_value h);
  Histogram.reset h;
  Alcotest.(check bool) "reset empties" true (Histogram.is_empty h)

let exact_rank values p =
  let sorted = List.sort Int64.compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))) in
  List.nth sorted (rank - 1)

(* Any quantile estimate must land in the same log-linear bucket as the
   exact order statistic — the <= 1/16 relative-error contract. *)
let prop_percentile_accuracy =
  QCheck.Test.make ~name:"p50/p90/p99 within one bucket of exact" ~count:300
    QCheck.(
      list_of_size Gen.(1 -- 200)
        (map Int64.of_int (oneof [ 0 -- 64; 0 -- 100_000; 0 -- 500_000_000 ])))
    (fun values ->
      let h = Histogram.create () in
      List.iter (fun v -> Histogram.record h v) values;
      List.for_all
        (fun p ->
          let est = Histogram.percentile h p in
          let exact = exact_rank values p in
          if Histogram.bucket_index est <> Histogram.bucket_index exact then
            QCheck.Test.fail_reportf
              "p%.0f: estimate %Ld (bucket %d) vs exact %Ld (bucket %d)" p est
              (Histogram.bucket_index est) exact
              (Histogram.bucket_index exact)
          else true)
        [ 50.0; 90.0; 99.0 ])

(* Merging histograms must equal recording the union of their samples,
   regardless of how the samples were split — what makes per-stage and
   cross-fingerprint aggregation well defined. *)
let prop_merge_associative =
  QCheck.Test.make ~name:"merge = recording the union" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 80) (map Int64.of_int (0 -- 1_000_000)))
        (list_of_size Gen.(0 -- 80) (map Int64.of_int (0 -- 1_000_000))))
    (fun (xs, ys) ->
      let record vs =
        let h = Histogram.create () in
        List.iter (fun v -> Histogram.record h v) vs;
        h
      in
      let merged = Histogram.merge (record xs) (record ys) in
      let direct = record (xs @ ys) in
      Histogram.nonzero_buckets merged = Histogram.nonzero_buckets direct
      && Histogram.count merged = Histogram.count direct
      && Histogram.total merged = Histogram.total direct
      && Histogram.min_value merged = Histogram.min_value direct
      && Histogram.max_value merged = Histogram.max_value direct)

let test_histogram_json () =
  let h = Histogram.create () in
  List.iter (fun v -> Histogram.record h v) [ 10L; 20L; 30L ];
  let j = Json.parse (Histogram.quantiles_to_json h) in
  let num name =
    match Json.member name j with
    | Some (Json.Num f) -> int_of_float f
    | _ -> Alcotest.failf "missing %s in %s" name (Json.to_string j)
  in
  Alcotest.(check int) "count" 3 (num "count");
  Alcotest.(check int) "total_ns" 60 (num "total_ns");
  Alcotest.(check int) "max_ns" 30 (num "max_ns")

(* --- fingerprint ---------------------------------------------------- *)

let check_shape = Alcotest.(check string)

let test_fingerprint_goldens () =
  check_shape "literals become ?"
    "SELECT * FROM T WHERE A = ? AND B = ?"
    (Fingerprint.normalize "select * from t where a = 42 and b = 'x''y'");
  check_shape "whitespace and comments collapse"
    "SELECT NAME FROM CUSTOMERS"
    (Fingerprint.normalize
       "  SELECT /* pick
          the column */ name\n\tFROM customers -- trailing");
  check_shape "IN-list arity collapses"
    "SELECT * FROM T WHERE ID IN(?)"
    (Fingerprint.normalize "SELECT * FROM T WHERE ID IN (1, 2, 3, 4)");
  check_shape "numeric forms become ?"
    "SELECT ? + ? + ? FROM T"
    (Fingerprint.normalize "SELECT 1.5 + .25 + 2e-3 FROM t");
  check_shape "quoted identifiers keep case"
    {|SELECT "MixedCase" FROM T|}
    (Fingerprint.normalize {|select "MixedCase" from t|});
  check_shape "unparseable SQL still normalizes" "SELEC X FRM"
    (Fingerprint.normalize "selec x frm")

let test_fingerprint_digests () =
  let d = Fingerprint.digest in
  Alcotest.(check string) "case and literals do not change the digest"
    (d "SELECT NAME FROM CUSTOMERS WHERE TIER = 1")
    (d "select name from customers where tier = 42");
  Alcotest.(check string) "IN-list arity does not change the digest"
    (d "SELECT * FROM T WHERE ID IN (1)")
    (d "SELECT * FROM T WHERE ID IN (1, 2, 3)");
  if d "SELECT A FROM T" = d "SELECT B FROM T" then
    Alcotest.fail "distinct shapes must not collide";
  Alcotest.(check int) "digest is 16 hex chars" 16
    (String.length (d "SELECT 1"));
  let digest, shape = Fingerprint.fingerprint "select 1" in
  Alcotest.(check string) "fingerprint pairs digest with shape" digest
    (Fingerprint.digest shape)

(* --- stats registry through the driver ------------------------------ *)

let test_stats_through_driver () =
  with_obs (fun () ->
      let app = Helpers.demo_app () in
      let conn = Connection.connect app in
      let sql = "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE TIER = 1" in
      ignore (Connection.execute_query conn sql);
      ignore (Connection.execute_query conn sql);
      ignore
        (Connection.execute_query conn
           "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE TIER = 2");
      (match Connection.execute_query conn "SELECT FROM WHERE" with
      | _ -> Alcotest.fail "expected a syntax error"
      | exception Sqlstate.Error _ -> ());
      let digest, _ = Fingerprint.fingerprint sql in
      let e =
        match Stats.find digest with
        | Some e -> e
        | None -> Alcotest.fail "no entry for the replayed fingerprint"
      in
      (* literal normalization folds TIER = 1 and TIER = 2 together *)
      Alcotest.(check int) "calls aggregated by shape" 3 e.Stats.calls;
      (* the LRU keys on raw SQL text: the repeated statement hits, the
         TIER = 2 variant (same fingerprint, different text) misses *)
      Alcotest.(check int) "cache hits counted" 1 e.Stats.cache_hits;
      Alcotest.(check bool) "rows accumulated" true (e.Stats.rows > 0);
      Alcotest.(check int) "no errors on this shape" 0 e.Stats.errors;
      Alcotest.(check int) "total histogram counts each call" 3
        (Histogram.count e.Stats.total);
      Alcotest.(check int) "per-stage histograms count each call" 3
        (Histogram.count e.Stats.execute);
      (* the failing statement lands on its own fingerprint with its
         SQLSTATE class *)
      let bad, _ = Fingerprint.fingerprint "SELECT FROM WHERE" in
      let be =
        match Stats.find bad with
        | Some e -> e
        | None -> Alcotest.fail "no entry for the failing fingerprint"
      in
      Alcotest.(check int) "error counted" 1 be.Stats.errors;
      Alcotest.(check bool) "error classed by SQLSTATE prefix" true
        (List.mem_assoc "42" (Stats.error_classes be));
      (* disabled stats observe nothing *)
      Stats.set_enabled false;
      ignore (Connection.execute_query conn sql);
      Alcotest.(check int) "disabled stats observe nothing" 3
        (Stats.find digest |> Option.get).Stats.calls)

(* --- flight recorder ------------------------------------------------ *)

let test_recorder_ring_bounds () =
  with_obs (fun () ->
      Recorder.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Recorder.set_capacity 64)
        (fun () ->
          for i = 1 to 10 do
            Recorder.record ~fingerprint:(Printf.sprintf "fp%d" i)
              ~shape:"SELECT ?" ~start_ns:0L
              ~dur_ns:(Int64.of_int (i * 100))
              Recorder.Done
          done;
          let evs = Recorder.events () in
          Alcotest.(check int) "ring keeps only the newest" 4
            (List.length evs);
          Alcotest.(check (list string)) "oldest first, newest last"
            [ "fp7"; "fp8"; "fp9"; "fp10" ]
            (List.map (fun (e : Recorder.event) -> e.Recorder.fingerprint) evs);
          let seqs = List.map (fun (e : Recorder.event) -> e.Recorder.seq) evs in
          Alcotest.(check bool) "seq survives the wrap" true
            (List.sort compare seqs = seqs);
          (* a disabled recorder appends nothing *)
          Recorder.set_enabled false;
          Recorder.record ~fingerprint:"off" ~shape:"" ~start_ns:0L
            ~dur_ns:0L Recorder.Done;
          Alcotest.(check int) "disabled recorder is silent" 4
            (List.length (Recorder.events ()))))

(* The acceptance path: a fault armed through AQUA_FAILPOINTS makes a
   query fail past the retry budget; the escaping SQLSTATE error must
   dump the ring — with the failing query's fingerprint and its
   resilience outcome — to the sink. *)
let test_recorder_dump_on_failpoint () =
  with_obs (fun () ->
      Telemetry.set_enabled true;
      Telemetry.reset ();
      Unix.putenv "AQUA_FAILPOINTS" "dsp.invoke=fail";
      Alcotest.(check bool) "failpoint armed from the environment" true
        (Failpoint.arm_from_env ());
      let sink = ref [] in
      Recorder.set_dump_sink (Some (fun line -> sink := line :: !sink));
      Fun.protect
        ~finally:(fun () ->
          Unix.putenv "AQUA_FAILPOINTS" "";
          Failpoint.disarm ();
          Telemetry.set_enabled false)
        (fun () ->
          let app = Helpers.demo_app () in
          let conn = Connection.connect app in
          let sql = "SELECT CUSTOMERNAME FROM CUSTOMERS" in
          let sqlstate =
            match Connection.execute_query conn sql with
            | _ -> Alcotest.fail "expected the injected fault to escape"
            | exception Sqlstate.Error e -> e.Sqlstate.sqlstate
          in
          Alcotest.(check string) "fault surfaces as connection failure"
            "08006" sqlstate;
          let lines = List.rev !sink in
          let jsons = List.map Json.parse lines in
          let header =
            match
              List.find_opt
                (fun j -> Json.member "ev" j = Some (Json.Str "recorder"))
                jsons
            with
            | Some h -> h
            | None -> Alcotest.fail "no recorder header in the dump"
          in
          Alcotest.(check bool) "dump reason is the SQLSTATE" true
            (Json.member "reason" header = Some (Json.Str "08006"));
          let digest, _ = Fingerprint.fingerprint sql in
          let event =
            match
              List.find_opt
                (fun j -> Json.member "fp" j = Some (Json.Str digest))
                jsons
            with
            | Some e -> e
            | None ->
              Alcotest.failf "failing fingerprint %s not in dump:\n%s" digest
                (String.concat "\n" lines)
          in
          Alcotest.(check bool) "event outcome is the SQLSTATE" true
            (Json.member "outcome" event = Some (Json.Str "08006"));
          let num name =
            match Json.member name event with
            | Some (Json.Num f) -> int_of_float f
            | _ -> Alcotest.failf "event lacks %s" name
          in
          Alcotest.(check bool) "faults recorded in the outcome" true
            (num "faults" > 0);
          Alcotest.(check bool) "retries recorded in the outcome" true
            (num "retries" > 0)))

(* --- exposition ----------------------------------------------------- *)

let test_prometheus_lints_clean () =
  with_obs (fun () ->
      Telemetry.set_enabled true;
      Telemetry.reset ();
      Stats.install_span_histograms ();
      Fun.protect
        ~finally:(fun () -> Telemetry.set_enabled false)
        (fun () ->
          let app = Helpers.demo_app () in
          let conn = Connection.connect app in
          ignore
            (Connection.execute_query conn
               "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE TIER = 1");
          (match
             Connection.execute_query conn "SELECT NOPE FROM NOWHERE"
           with
          | _ -> Alcotest.fail "expected an unknown-table error"
          | exception Sqlstate.Error _ -> ());
          let text = Expose.prometheus () in
          Alcotest.(check (list string)) "exposition passes the linter" []
            (Expose.lint text);
          (* the per-fingerprint families must actually be present *)
          let contains needle =
            let nl = String.length needle and tl = String.length text in
            let rec scan i =
              i + nl <= tl
              && (String.sub text i nl = needle || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) "query calls exposed" true
            (contains "aqua_query_calls_total");
          Alcotest.(check bool) "per-stage quantiles exposed" true
            (contains "aqua_query_latency_ns");
          Alcotest.(check bool) "error classes exposed" true
            (contains "aqua_query_errors_total");
          Alcotest.(check bool) "span histograms exposed" true
            (contains "aqua_latency_ns_bucket");
          let j = Json.parse (Expose.json ()) in
          (match Json.member "fingerprints" j with
          | Some (Json.Arr (_ :: _)) -> ()
          | _ -> Alcotest.fail "json exposition lacks fingerprints");
          match Json.member "histograms" j with
          | Some (Json.Obj _) -> ()
          | _ -> Alcotest.fail "json exposition lacks histograms"))

(* Gauges: registered read-callbacks must render as a gauge family,
   pass the linter, track the underlying value live, and disappear on
   unregister. *)
let test_gauges_render_and_lint () =
  let depth = ref 3 in
  Expose.register_gauge ~help:"a test gauge" "test.gauge_depth" (fun () ->
      !depth);
  Fun.protect
    ~finally:(fun () -> Expose.unregister_gauge "test.gauge_depth")
    (fun () ->
      let text = Expose.prometheus () in
      Alcotest.(check (list string)) "exposition with gauges lints clean" []
        (Expose.lint text);
      Alcotest.(check bool) "TYPE line says gauge" true
        (has text "# TYPE aqua_test_gauge_depth gauge");
      Alcotest.(check bool) "value rendered" true
        (has text "aqua_test_gauge_depth 3");
      depth := 7;
      Alcotest.(check bool) "gauge reads live" true
        (has (Expose.prometheus ()) "aqua_test_gauge_depth 7");
      Alcotest.(check bool) "json exposition carries gauges" true
        (match Json.member "gauges" (Json.parse (Expose.json ())) with
        | Some (Json.Obj fields) ->
          List.exists (fun (k, _) -> k = "test.gauge_depth") fields
        | _ -> false);
      (* a raising reader is skipped, not fatal to the scrape *)
      Expose.register_gauge ~help:"broken" "test.gauge_broken" (fun () ->
          failwith "reader died");
      Fun.protect
        ~finally:(fun () -> Expose.unregister_gauge "test.gauge_broken")
        (fun () ->
          let text = Expose.prometheus () in
          Alcotest.(check (list string)) "scrape survives a dead reader" []
            (Expose.lint text);
          Alcotest.(check bool) "dead reader omitted" false
            (has text "test_gauge_broken")));
  Alcotest.(check bool) "unregistered gauge gone" false
    (has (Expose.prometheus ()) "aqua_test_gauge_depth")

(* The recorder stamps events with the ambient trace context, and the
   NDJSON rendering carries the id. *)
let test_recorder_trace_ids () =
  with_obs (fun () ->
      Telemetry.with_trace ~id:"trace-77" ~sampled:false (fun () ->
          Recorder.record ~fingerprint:"fp-ambient" ~shape:"SELECT ?"
            ~start_ns:0L ~dur_ns:10L Recorder.Done);
      Recorder.record ~fingerprint:"fp-explicit" ~shape:"SELECT ?"
        ~trace_id:"trace-88" ~start_ns:0L ~dur_ns:10L Recorder.Done;
      Recorder.record ~fingerprint:"fp-none" ~shape:"SELECT ?" ~start_ns:0L
        ~dur_ns:10L Recorder.Done;
      match Recorder.events () with
      | [ ambient; explicit; bare ] ->
        Alcotest.(check string) "ambient context stamped" "trace-77"
          ambient.Recorder.trace_id;
        Alcotest.(check bool) "ambient id in ndjson" true
          (has
             (Recorder.event_to_ndjson ambient)
             "\"trace\":\"trace-77\"");
        Alcotest.(check string) "explicit id wins" "trace-88"
          explicit.Recorder.trace_id;
        Alcotest.(check string) "no context, no id" ""
          bare.Recorder.trace_id;
        Alcotest.(check bool) "no trace field without an id" false
          (has (Recorder.event_to_ndjson bare) "\"trace\"")
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

(* The linter itself must reject broken expositions, or the CI check
   proves nothing. *)
let test_linter_catches_breakage () =
  let reject label text =
    if Expose.lint text = [] then
      Alcotest.failf "linter accepted %s:\n%s" label text
  in
  reject "sample without TYPE" "aqua_x_total 1\n";
  reject "non-cumulative buckets"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 5\n\
     h_bucket{le=\"2\"} 3\n\
     h_bucket{le=\"+Inf\"} 5\n\
     h_sum 9\nh_count 5\n";
  reject "missing +Inf bucket"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
  reject "count disagrees with +Inf"
    "# TYPE h histogram\n\
     h_bucket{le=\"+Inf\"} 5\n\
     h_sum 9\nh_count 7\n";
  reject "malformed value" "# TYPE c counter\nc 12abc\n";
  Alcotest.(check (list string)) "a valid exposition passes" []
    (Expose.lint
       "# HELP c a counter\n# TYPE c counter\nc{label=\"v\"} 12\n")

let suite =
  ( "obs",
    [ case "histogram basics" test_histogram_basics;
      Helpers.qcheck prop_percentile_accuracy;
      Helpers.qcheck prop_merge_associative;
      case "histogram quantile json" test_histogram_json;
      case "fingerprint normalization goldens" test_fingerprint_goldens;
      case "fingerprint digests" test_fingerprint_digests;
      case "stats registry through the driver" test_stats_through_driver;
      case "recorder ring is bounded" test_recorder_ring_bounds;
      case "recorder dumps on failpoint fault" test_recorder_dump_on_failpoint;
      case "prometheus exposition lints clean" test_prometheus_lints_clean;
      case "gauges render, lint and unregister" test_gauges_render_and_lint;
      case "recorder stamps trace ids" test_recorder_trace_ids;
      case "linter catches breakage" test_linter_catches_breakage ] )
